"""Labeled metrics: typed instruments, one unified snapshot, exporters.

The engine already measures itself three ways — flat hit/miss counters
(:mod:`repro.perf`), wall-clock spans (:mod:`repro.obs.spans`), and the
flight-recorder journal (:mod:`repro.obs.journal`).  This module adds
the missing *labeled* view and, more importantly, unifies all of them
into one snapshot with two machine formats:

* :class:`MetricsRegistry` — a context-owned registry (every
  :class:`~repro.context.EngineContext` carries one, like its span
  buffer and counter table) of typed, labeled instruments:

  - :class:`CounterHandle` — monotone counts (``.inc()``);
  - :class:`GaugeHandle` — levels and peaks (``.set()`` / ``.set_max()``);
  - :class:`HistogramHandle` — distributions (``.observe()``), with
    fixed bucket edges so shards merge exactly.

  Instruments are cheap plain-data holders; ``.labels(k=v)`` returns a
  handle bound to one label combination.  Snapshots are plain dicts,
  so they pickle and ship across the same delta transport as counters
  and spans; :meth:`MetricsRegistry.merge` folds a shard's snapshot
  home (counters and histograms add, gauges max — a shard's gauge is a
  peak observation, not a level to average away).

* :func:`unified_snapshot` — one plain dict covering the registry's
  instruments, the perf counters / cache sizes / peaks / hit-rates,
  the span percentiles, and the journal's depth — the "one snapshot
  shows everything" contract ``repro.serve`` responses will embed.

* :func:`to_prometheus` / :func:`to_json` — render a unified snapshot
  as Prometheus exposition text (``# HELP``/``# TYPE`` + samples,
  histogram ``_bucket``/``_sum``/``_count``, span summaries as
  ``quantile`` samples) or as a JSON document.  Both are pure
  functions of the snapshot, so exports are testable byte-for-byte.

Stdlib only, like the rest of the observability layer.
"""

from __future__ import annotations

import json
import math
import re
import threading
from typing import Any, Iterable, Mapping

from repro import context as _context

#: Default histogram bucket upper edges (seconds-flavoured: the hot
#: paths this library times run microseconds to tens of seconds).
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_KINDS = ("counter", "gauge", "histogram")


class MetricsError(ValueError):
    """An instrument was re-registered with a conflicting shape."""


class _Instrument:
    """One named family: kind, help text, label names, per-label state."""

    __slots__ = ("name", "kind", "help", "label_names", "buckets", "samples")

    def __init__(self, name: str, kind: str, help_text: str,
                 label_names: tuple[str, ...],
                 buckets: tuple[float, ...] | None) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.label_names = label_names
        self.buckets = buckets
        #: label-values tuple -> number (counter/gauge) or histogram
        #: state ``[bucket_counts, overflow, sum, count]``.
        self.samples: dict[tuple, Any] = {}

    def blank(self):
        if self.kind == "histogram":
            assert self.buckets is not None
            return [[0] * len(self.buckets), 0, 0.0, 0]
        return 0


class _Handle:
    """An instrument bound to one label combination."""

    __slots__ = ("_registry", "_instrument", "_key")

    def __init__(self, registry: "MetricsRegistry",
                 instrument: _Instrument, key: tuple) -> None:
        self._registry = registry
        self._instrument = instrument
        self._key = key


class CounterHandle(_Handle):
    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise MetricsError(
                f"counter {self._instrument.name!r} cannot decrease"
            )
        with self._registry._lock:
            samples = self._instrument.samples
            samples[self._key] = samples.get(self._key, 0) + amount


class GaugeHandle(_Handle):
    def set(self, value: int | float) -> None:
        with self._registry._lock:
            self._instrument.samples[self._key] = value

    def set_max(self, value: int | float) -> None:
        """High-water-mark update (what cache peaks do)."""
        with self._registry._lock:
            samples = self._instrument.samples
            if value > samples.get(self._key, float("-inf")):
                samples[self._key] = value


class HistogramHandle(_Handle):
    def observe(self, value: int | float) -> None:
        instrument = self._instrument
        buckets = instrument.buckets
        assert buckets is not None
        with self._registry._lock:
            state = instrument.samples.get(self._key)
            if state is None:
                state = instrument.blank()
                instrument.samples[self._key] = state
            counts, _overflow, _total, _n = state
            for index, edge in enumerate(buckets):
                if value <= edge:
                    counts[index] += 1
                    break
            else:
                state[1] += 1
            state[2] += value
            state[3] += 1


_HANDLE_TYPES = {
    "counter": CounterHandle,
    "gauge": GaugeHandle,
    "histogram": HistogramHandle,
}


class MetricsRegistry:
    """A context-owned table of labeled instruments.

    Creation is idempotent per name — re-declaring an instrument with
    the same shape returns the existing family (so hot paths can
    declare at use sites without import-order choreography); declaring
    the same name with a different kind, label set, or bucket layout
    raises :class:`MetricsError`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, _Instrument] = {}

    # -- declaration -----------------------------------------------------------

    def _declare(self, name: str, kind: str, help_text: str,
                 labels: Iterable[str],
                 buckets: tuple[float, ...] | None = None) -> _Instrument:
        label_names = tuple(labels)
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = _Instrument(name, kind, help_text,
                                         label_names, buckets)
                self._instruments[name] = instrument
                return instrument
        if instrument.kind != kind or instrument.label_names != label_names:
            raise MetricsError(
                f"instrument {name!r} already registered as "
                f"{instrument.kind}{instrument.label_names}, not "
                f"{kind}{label_names}"
            )
        if kind == "histogram" and instrument.buckets != buckets:
            raise MetricsError(
                f"histogram {name!r} already registered with buckets "
                f"{instrument.buckets}, not {buckets}"
            )
        return instrument

    def _handle(self, instrument: _Instrument, values: Mapping[str, Any]):
        if set(values) != set(instrument.label_names):
            raise MetricsError(
                f"instrument {instrument.name!r} takes labels "
                f"{instrument.label_names}, got {tuple(sorted(values))}"
            )
        key = tuple(str(values[name]) for name in instrument.label_names)
        return _HANDLE_TYPES[instrument.kind](self, instrument, key)

    def counter(self, name: str, help_text: str = "",
                labels: Iterable[str] = ()) -> "_Family":
        return _Family(self, self._declare(name, "counter", help_text, labels))

    def gauge(self, name: str, help_text: str = "",
              labels: Iterable[str] = ()) -> "_Family":
        return _Family(self, self._declare(name, "gauge", help_text, labels))

    def histogram(self, name: str, help_text: str = "",
                  labels: Iterable[str] = (),
                  buckets: Iterable[float] = DEFAULT_BUCKETS) -> "_Family":
        edges = tuple(sorted(float(edge) for edge in buckets))
        if not edges:
            raise MetricsError(f"histogram {name!r} needs at least one bucket")
        return _Family(
            self, self._declare(name, "histogram", help_text, labels, edges)
        )

    # -- views and transport ---------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Every family and sample, as one plain (picklable) dict."""
        out: dict[str, Any] = {}
        with self._lock:
            for name in sorted(self._instruments):
                instrument = self._instruments[name]
                samples = []
                for key in sorted(instrument.samples):
                    label_map = dict(zip(instrument.label_names, key))
                    state = instrument.samples[key]
                    if instrument.kind == "histogram":
                        counts, overflow, total, n = state
                        samples.append({
                            "labels": label_map,
                            "buckets": [
                                [edge, count] for edge, count in
                                zip(instrument.buckets, counts)
                            ],
                            "overflow": overflow,
                            "sum": total,
                            "count": n,
                        })
                    else:
                        samples.append({"labels": label_map, "value": state})
                out[name] = {
                    "kind": instrument.kind,
                    "help": instrument.help,
                    "labels": list(instrument.label_names),
                    "samples": samples,
                }
                if instrument.kind == "histogram":
                    out[name]["buckets"] = list(instrument.buckets)
        return out

    def merge(self, snapshot: Mapping[str, Any]) -> None:
        """Fold another registry's snapshot into this one, losslessly.

        Counters and histograms add; gauges take the max (a shipped
        gauge is a shard's peak, and peaks combine by max, exactly like
        ``perf.merge_cache_peaks``).
        """
        for name, family in snapshot.items():
            kind = family["kind"]
            if kind not in _KINDS:
                raise MetricsError(f"unknown instrument kind {kind!r}")
            buckets = (
                tuple(family["buckets"]) if kind == "histogram" else None
            )
            instrument = self._declare(
                name, kind, family.get("help", ""),
                family.get("labels", ()), buckets,
            )
            with self._lock:
                for sample in family["samples"]:
                    key = tuple(
                        str(sample["labels"][label])
                        for label in instrument.label_names
                    )
                    if kind == "histogram":
                        state = instrument.samples.get(key)
                        if state is None:
                            state = instrument.blank()
                            instrument.samples[key] = state
                        for index, (_edge, count) in enumerate(
                            sample["buckets"]
                        ):
                            state[0][index] += count
                        state[1] += sample["overflow"]
                        state[2] += sample["sum"]
                        state[3] += sample["count"]
                    elif kind == "counter":
                        instrument.samples[key] = (
                            instrument.samples.get(key, 0) + sample["value"]
                        )
                    else:  # gauge: peaks combine by max
                        current = instrument.samples.get(key, float("-inf"))
                        instrument.samples[key] = max(current, sample["value"])

    def reset(self) -> None:
        with self._lock:
            self._instruments.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._instruments)


class _Family:
    """A declared instrument family: label it to get a writable handle."""

    __slots__ = ("_registry", "_instrument")

    def __init__(self, registry: MetricsRegistry,
                 instrument: _Instrument) -> None:
        self._registry = registry
        self._instrument = instrument

    def labels(self, **values: Any):
        return self._registry._handle(self._instrument, values)

    # Unlabeled families write through a single implicit sample.

    def inc(self, amount: int | float = 1) -> None:
        self.labels().inc(amount)

    def set(self, value: int | float) -> None:
        self.labels().set(value)

    def set_max(self, value: int | float) -> None:
        self.labels().set_max(value)

    def observe(self, value: int | float) -> None:
        self.labels().observe(value)


# -- module-level conveniences (the current context's registry) ---------------


def registry() -> MetricsRegistry:
    return _context.current().metrics


def counter(name: str, help_text: str = "",
            labels: Iterable[str] = ()) -> _Family:
    return registry().counter(name, help_text, labels)


def gauge(name: str, help_text: str = "",
          labels: Iterable[str] = ()) -> _Family:
    return registry().gauge(name, help_text, labels)


def histogram(name: str, help_text: str = "", labels: Iterable[str] = (),
              buckets: Iterable[float] = DEFAULT_BUCKETS) -> _Family:
    return registry().histogram(name, help_text, labels, buckets)


# -- the unified snapshot ------------------------------------------------------


def unified_snapshot(meta: Mapping[str, Any] | None = None) -> dict[str, Any]:
    """Everything the current context knows about itself, in one dict.

    Sections: ``instruments`` (this registry), ``perf`` (counters,
    cache sizes, peaks, hit rates — :func:`repro.perf.snapshot`),
    ``spans`` (per-name percentiles), ``journal`` (ring depth and drop
    count), and optionally ``meta`` (a caller-supplied
    :func:`repro.obs.runmeta.run_metadata` fingerprint).  This is the
    input contract of :func:`to_prometheus` / :func:`to_json`.
    """
    from repro import perf
    from repro.obs import spans

    ctx = _context.current()
    ring = ctx.journal
    snapshot: dict[str, Any] = {
        "instruments": ctx.metrics.snapshot(),
        "perf": perf.snapshot(),
        "spans": spans.summary(),
        "journal": {
            "events": len(ring),
            "dropped": ring.dropped,
            "capacity": ring.capacity,
        },
    }
    if meta is not None:
        snapshot["meta"] = dict(meta)
    return snapshot


# -- exporters ------------------------------------------------------------------

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_FIX = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_FIX = re.compile(r"[^a-zA-Z0-9_]")


def _metric_name(raw: str, prefix: str = "repro_") -> str:
    name = prefix + _NAME_FIX.sub("_", raw)
    assert _NAME_OK.match(name)
    return name


def _escape(value: Any) -> str:
    return (
        str(value)
        .replace("\\", r"\\")
        .replace('"', r'\"')
        .replace("\n", r"\n")
    )


def _labels_text(labels: Mapping[str, Any]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{_LABEL_FIX.sub("_", str(k))}="{_escape(v)}"'
        for k, v in sorted(labels.items())
    )
    return "{" + body + "}"


def _value_text(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _family_lines(name: str, kind: str, help_text: str,
                  samples: list[tuple[str, Mapping[str, Any], Any]]) -> list[str]:
    """``# HELP``/``# TYPE`` plus one line per (suffix, labels, value)."""
    lines = []
    if help_text:
        lines.append(f"# HELP {name} {_escape(help_text)}")
    lines.append(f"# TYPE {name} {kind}")
    for suffix, labels, value in samples:
        lines.append(
            f"{name}{suffix}{_labels_text(labels)} {_value_text(value)}"
        )
    return lines


def to_prometheus(snapshot: Mapping[str, Any]) -> str:
    """Render a unified snapshot in Prometheus text exposition format.

    Deterministic: families and samples are emitted in sorted order, so
    the same snapshot always renders the same bytes (golden-tested).
    """
    lines: list[str] = []

    meta = snapshot.get("meta")
    if meta:
        info_labels = {
            k: v for k, v in meta.items()
            if isinstance(v, (str, int, float, bool)) and v is not None
        }
        lines += _family_lines(
            "repro_build_info", "gauge",
            "Run fingerprint (git SHA, interpreter, platform).",
            [("", info_labels, 1)],
        )

    perf_section = snapshot.get("perf", {})
    counters = perf_section.get("counters", {})
    if counters:
        lines += _family_lines(
            "repro_perf_events_total", "counter",
            "Flat perf counter table (layer.event increments).",
            [("", {"event": event}, counters[event])
             for event in sorted(counters)],
        )
    hit_rates = perf_section.get("hit_rates", {})
    if hit_rates:
        lines += _family_lines(
            "repro_cache_hit_ratio", "gauge",
            "Cache hit rate per layer (hits / (hits + misses)).",
            [("", {"layer": layer}, hit_rates[layer])
             for layer in sorted(hit_rates)],
        )
    sizes = perf_section.get("cache_sizes", {})
    if sizes:
        lines += _family_lines(
            "repro_cache_entries", "gauge",
            "Live entry count of each registered cache.",
            [("", {"cache": name}, sizes[name]) for name in sorted(sizes)],
        )
    peaks = perf_section.get("cache_peaks", {})
    if peaks:
        lines += _family_lines(
            "repro_cache_peak_entries", "gauge",
            "High-water mark of each registered cache.",
            [("", {"cache": name}, peaks[name]) for name in sorted(peaks)],
        )

    span_summary = snapshot.get("spans", {})
    if span_summary:
        samples: list[tuple[str, Mapping[str, Any], Any]] = []
        for span_name in sorted(span_summary):
            row = span_summary[span_name]
            for quantile, key in (("0.5", "p50_s"), ("0.95", "p95_s"),
                                  ("0.99", "p99_s")):
                samples.append(
                    ("", {"span": span_name, "quantile": quantile}, row[key])
                )
            samples.append(("_sum", {"span": span_name}, row["total_s"]))
            samples.append(("_count", {"span": span_name}, row["count"]))
        lines += _family_lines(
            "repro_span_duration_seconds", "summary",
            "Wall-clock span percentiles (nearest-rank).",
            samples,
        )

    journal_section = snapshot.get("journal")
    if journal_section:
        lines += _family_lines(
            "repro_journal_events", "gauge",
            "Events currently retained in the flight-recorder ring.",
            [("", {}, journal_section["events"])],
        )
        lines += _family_lines(
            "repro_journal_dropped_total", "counter",
            "Events discarded by the bounded ring.",
            [("", {}, journal_section["dropped"])],
        )
        lines += _family_lines(
            "repro_journal_capacity", "gauge",
            "Flight-recorder ring capacity.",
            [("", {}, journal_section["capacity"])],
        )

    for raw_name, family in sorted(snapshot.get("instruments", {}).items()):
        kind = family["kind"]
        name = _metric_name(raw_name)
        if kind == "counter" and not name.endswith("_total"):
            name += "_total"
        samples = []
        for sample in family["samples"]:
            labels = sample["labels"]
            if kind == "histogram":
                cumulative = 0
                for edge, count in sample["buckets"]:
                    cumulative += count
                    samples.append(
                        ("_bucket", {**labels, "le": _value_text(edge)},
                         cumulative)
                    )
                samples.append(
                    ("_bucket", {**labels, "le": "+Inf"},
                     cumulative + sample["overflow"])
                )
                samples.append(("_sum", labels, sample["sum"]))
                samples.append(("_count", labels, sample["count"]))
            else:
                samples.append(("", labels, sample["value"]))
        lines += _family_lines(name, kind, family.get("help", ""), samples)

    return "\n".join(lines) + "\n"


def to_json(snapshot: Mapping[str, Any]) -> str:
    """Render a unified snapshot as a stable JSON document."""
    return json.dumps(snapshot, indent=2, sort_keys=True) + "\n"
