"""Wall-clock spans: the timing half of the observability layer.

Where :mod:`repro.perf` answers "how often did each cache hit?", this
module answers "where did the time go?".  A *span* is one named,
monotonic-clock-timed region of work (``with spans.span("sweep.schema",
schema="A1"): ...``); completed spans land in the current engine
context's buffer (:mod:`repro.context`) as plain dicts, so they pickle,
merge across processes, and serialize to JSONL without any machinery.

Design points, mirroring ``perf``:

* **Zero dependencies** — stdlib only, importable from anywhere.
* **Thread-safe** — buffer appends take a lock; the timing itself is
  lock-free (``time.perf_counter`` before/after).
* **Process-safe by delta shipping** — a worker records spans locally,
  computes ``delta_since(mark)``, and ships the plain-data delta home;
  the parent ``merge()``s it.  Executor processes are reused across
  shards, so deltas (not raw buffers) are the unit of transport,
  exactly like ``perf`` counter deltas.
* **Coarse-grained by convention** — spans wrap phases (a schema sweep,
  a good-runs stage, a fuzz iteration), not individual ``_eval`` calls;
  buffers stay small and summaries stay meaningful.  The per-formula
  story belongs to :mod:`repro.obs.trace`.

``summary()`` reduces the buffer to per-name count/total/min/max plus
p50/p95/p99 percentiles (nearest-rank); ``histogram()`` buckets the
durations on a log scale.  Both are derived views — the buffer of raw
samples remains the single source of truth, which is what makes the
parallel-sweep merge lossless.
"""

from __future__ import annotations

import json
import math
import threading
import time
from contextlib import contextmanager
from typing import Any, Iterable, Iterator, Mapping

from repro import context as _context


class SpanRecorder:
    """A buffer of completed spans, safe to share across threads."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._buffer: list[dict[str, Any]] = []

    # -- recording -----------------------------------------------------------

    def record(self, name: str, seconds: float, **attrs: Any) -> None:
        """Append one completed span (``seconds`` of wall-clock time)."""
        sample: dict[str, Any] = {"name": name, "seconds": seconds}
        if attrs:
            sample["attrs"] = attrs
        with self._lock:
            self._buffer.append(sample)

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[dict[str, Any]]:
        """Time a region of work on the monotonic clock.

        Yields the (mutable) attribute dict, so callers can attach
        results that only exist once the work is done::

            with spans.span("goodruns.stage", depth=j) as attrs:
                ...
                attrs["survivors"] = count
        """
        start = time.perf_counter()
        try:
            yield attrs
        finally:
            self.record(name, time.perf_counter() - start, **attrs)

    def event(self, name: str, **attrs: Any) -> None:
        """Record a zero-duration marker (a point event)."""
        self.record(name, 0.0, **attrs)

    # -- transport (the parallel-sweep contract) ------------------------------

    def mark(self) -> int:
        """A position in the buffer; pair with :meth:`delta_since`."""
        with self._lock:
            return len(self._buffer)

    def delta_since(self, mark: int) -> list[dict[str, Any]]:
        """Every span recorded after ``mark``, as plain picklable data."""
        with self._lock:
            return [dict(sample) for sample in self._buffer[mark:]]

    def merge(self, samples: Iterable[Mapping[str, Any]]) -> None:
        """Fold another process's span delta into this buffer."""
        with self._lock:
            for sample in samples:
                self._buffer.append(dict(sample))

    # -- views ----------------------------------------------------------------

    def snapshot(self) -> tuple[dict[str, Any], ...]:
        with self._lock:
            return tuple(dict(sample) for sample in self._buffer)

    def reset(self) -> None:
        with self._lock:
            self._buffer.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._buffer)

    def summary(self, group_by: str | None = None) -> dict[str, dict[str, Any]]:
        """Per-name count/total/min/max/p50/p95/p99, from the buffer.

        With ``group_by`` set to an attribute name, samples carrying
        that attribute split into per-value rows keyed
        ``name{attr=value}`` (e.g. ``goodruns.stage`` by ``depth`` or
        ``engine``); samples without the attribute keep their plain
        name — no more manual post-filtering of the raw buffer.
        """
        return summarize(self.snapshot(), group_by=group_by)

    def histogram(self, name: str, base: float = 2.0) -> list[tuple[float, int]]:
        """Log-bucketed duration counts for one span name.

        Buckets are ``(upper_edge_seconds, count)`` with edges at
        integer powers of ``base`` (micro-second floor); zero-duration
        events land in the first bucket.
        """
        durations = [
            sample["seconds"] for sample in self.snapshot()
            if sample["name"] == name
        ]
        if not durations:
            return []
        counts: dict[int, int] = {}
        for seconds in durations:
            exponent = (
                math.ceil(math.log(seconds, base)) if seconds > 1e-6 else
                math.ceil(math.log(1e-6, base))
            )
            counts[exponent] = counts.get(exponent, 0) + 1
        return [
            (base ** exponent, counts[exponent])
            for exponent in sorted(counts)
        ]

    def render(self, group_by: str | None = None) -> str:
        """Human-readable span table (the ``perf`` CLI companion)."""
        summary = self.summary(group_by=group_by)
        width = max([26] + [len(name) for name in summary])
        header = (
            f"{'span':<{width}} {'count':>6} {'total_s':>9} {'p50_s':>9} "
            f"{'p95_s':>9} {'p99_s':>9} {'max_s':>9}"
        )
        lines = [header, "-" * len(header)]
        for name in sorted(summary):
            row = summary[name]
            lines.append(
                f"{name:<{width}} {row['count']:>6} {row['total_s']:>9.4f} "
                f"{row['p50_s']:>9.4f} {row['p95_s']:>9.4f} "
                f"{row['p99_s']:>9.4f} {row['max_s']:>9.4f}"
            )
        return "\n".join(lines)

    def write_jsonl(self, path: str) -> int:
        """Dump the buffer as JSONL (one span per line); returns count."""
        samples = self.snapshot()
        with open(path, "w", encoding="utf-8") as handle:
            for sample in samples:
                handle.write(json.dumps(sample, sort_keys=True) + "\n")
        return len(samples)


def percentile(durations: list[float], q: float) -> float:
    """Nearest-rank percentile of a non-empty, *sorted* duration list."""
    if not durations:
        raise ValueError("percentile of an empty sample set")
    rank = max(1, math.ceil(q / 100.0 * len(durations)))
    return durations[rank - 1]


def summarize(
    samples: Iterable[Mapping[str, Any]],
    group_by: str | None = None,
) -> dict[str, dict[str, Any]]:
    """Reduce raw span samples to per-name timing statistics.

    ``group_by`` names a span attribute: samples carrying it are keyed
    ``name{attr=value}`` instead of plain ``name``, yielding per-stage
    or per-engine rows directly from the buffer.
    """
    by_name: dict[str, list[float]] = {}
    for sample in samples:
        key = sample["name"]
        if group_by is not None:
            attrs = sample.get("attrs") or {}
            if group_by in attrs:
                key = f"{key}{{{group_by}={attrs[group_by]}}}"
        by_name.setdefault(key, []).append(sample["seconds"])
    out: dict[str, dict[str, Any]] = {}
    for name, durations in by_name.items():
        durations.sort()
        out[name] = {
            "count": len(durations),
            "total_s": round(sum(durations), 6),
            "min_s": round(durations[0], 6),
            "max_s": round(durations[-1], 6),
            "p50_s": round(percentile(durations, 50), 6),
            "p95_s": round(percentile(durations, 95), 6),
            "p99_s": round(percentile(durations, 99), 6),
        }
    return out


#: The module-level functions below delegate to the *current engine
#: context's* recorder, mirroring ``perf.counters``: one shared buffer
#: per process by default (the default context), a private buffer per
#: session when a workload runs under :func:`repro.context.use`.


def recorder() -> SpanRecorder:
    return _context.current().spans


def _stamp_corr(attrs: dict[str, Any]) -> dict[str, Any]:
    """Attach the current correlation ID (if any) to span attributes.

    The same ID lands on journal events (:mod:`repro.obs.journal`), so
    one ``corr`` value selects a request's spans *and* events out of
    any merged telemetry stream — the provenance contract fuzz
    counterexamples and the future serve daemon rely on.
    """
    corr = _context.current().corr_id
    if corr is not None:
        attrs.setdefault("corr", corr)
    return attrs


def span(name: str, **attrs: Any):
    return recorder().span(name, **_stamp_corr(attrs))


def record(name: str, seconds: float, **attrs: Any) -> None:
    recorder().record(name, seconds, **_stamp_corr(attrs))


def event(name: str, **attrs: Any) -> None:
    recorder().event(name, **_stamp_corr(attrs))


def mark() -> int:
    return recorder().mark()


def delta_since(position: int) -> list[dict[str, Any]]:
    return recorder().delta_since(position)


def merge(samples: Iterable[Mapping[str, Any]]) -> None:
    recorder().merge(samples)


def snapshot() -> tuple[dict[str, Any], ...]:
    return recorder().snapshot()


def reset() -> None:
    recorder().reset()


def summary(group_by: str | None = None) -> dict[str, dict[str, Any]]:
    return recorder().summary(group_by=group_by)


def histogram(name: str, base: float = 2.0) -> list[tuple[float, int]]:
    return recorder().histogram(name, base)


def render(group_by: str | None = None) -> str:
    return recorder().render(group_by=group_by)


def write_jsonl(path: str) -> int:
    return recorder().write_jsonl(path)
