"""The flight recorder: a bounded ring buffer of structured events.

Where :mod:`repro.perf` counts *how often* and :mod:`repro.obs.spans`
times *how long*, the journal remembers *what happened last*: a
bounded, thread-safe ring of structured events (system compilations,
cache evictions, compiler fallbacks, skipped good-runs stages, oracle
verdicts, shard merges) that a failing workload can be debugged from
after the fact.  Fuzz counterexamples attach the tail of their
iteration's journal next to the why-false trace, and ``python -m repro
obs --journal`` dumps a workload's ring as JSONL.

Design points, mirroring ``spans``:

* **Zero dependencies** — stdlib only, importable from anywhere.
* **Bounded by construction** — the ring keeps the last ``capacity``
  events and counts what it dropped; a long-lived process cannot
  accumulate unbounded history (that is the "flight recorder"
  contract: the recent past, always, cheaply).
* **Plain data** — events are dicts (``seq``/``ts``/``kind``/``corr``
  plus free-form attributes), so they pickle, merge across processes,
  and serialize to JSONL without machinery.
* **Process-safe by delta shipping** — a worker shard records into its
  ephemeral context's journal and ships ``delta_since(mark)`` home;
  the parent ``merge()``s, exactly like spans and counters.

**Correlation IDs.**  Every event carries ``corr``: the correlation ID
of the context that recorded it (``EngineContext.corr_id``).  The
:func:`correlation` context manager installs an ID on the current
context; ephemeral contexts created with :func:`repro.context.fresh`
inherit the creator's ID, and the parallel sweep ships its ID to
worker shards, so one logical request keeps one ID across threads,
processes, and throwaway contexts.  Span attributes are stamped with
the same ID (see :func:`repro.obs.spans.span`), which is the
per-request provenance contract the future ``repro.serve`` daemon
builds on: one ``corr`` selects a request's events, spans, and
counterexamples out of any merged stream.
"""

from __future__ import annotations

import json
import threading
import time
import uuid
from collections import deque
from contextlib import contextmanager
from typing import Any, Iterable, Iterator, Mapping

from repro import context as _context

#: Default ring capacity.  Sized for "the recent past of one session":
#: big enough that a fuzz campaign's last iterations or a sweep's shard
#: merges are all present, small enough to be ignorable memory.
DEFAULT_CAPACITY = 4096


class Journal:
    """A bounded ring buffer of structured events, safe across threads."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError(f"journal capacity must be positive, got {capacity}")
        self.capacity = capacity
        #: Recording switch: a ``False`` here makes :meth:`record` a
        #: no-op (the overhead-guard baseline and a lever a hot serving
        #: loop can pull without unwiring call sites).
        self.enabled = True
        self._lock = threading.Lock()
        self._ring: deque[dict[str, Any]] = deque(maxlen=capacity)
        self._seq = 0
        self._dropped = 0

    # -- recording -----------------------------------------------------------

    def record(self, kind: str, corr: str | None = None, **attrs: Any) -> None:
        """Append one event (``kind`` plus free-form attributes)."""
        if not self.enabled:
            return
        event: dict[str, Any] = {
            "seq": 0,  # assigned under the lock
            "ts": round(time.time(), 6),
            "kind": kind,
            "corr": corr,
        }
        if attrs:
            event["attrs"] = attrs
        with self._lock:
            self._seq += 1
            event["seq"] = self._seq
            if len(self._ring) == self.capacity:
                self._dropped += 1
            self._ring.append(event)

    # -- transport (the parallel-sweep contract) ------------------------------

    def mark(self) -> int:
        """A position in the event stream; pair with :meth:`delta_since`.

        Positions are sequence numbers, not buffer indices, so a mark
        stays meaningful even after the ring wraps past it.
        """
        with self._lock:
            return self._seq

    def delta_since(self, mark: int) -> list[dict[str, Any]]:
        """Every *retained* event recorded after ``mark``, as plain data.

        Events that wrapped out of the ring between ``mark`` and now are
        gone — by design; :attr:`dropped` keeps the honest count.
        """
        with self._lock:
            return [
                dict(event) for event in self._ring if event["seq"] > mark
            ]

    def merge(self, events: Iterable[Mapping[str, Any]]) -> None:
        """Fold another context's journal delta into this ring.

        Merged events keep their original ``seq``/``ts``/``corr`` — the
        correlation ID, not the local sequence, is what ties a merged
        stream back to its origin.
        """
        with self._lock:
            for event in events:
                if len(self._ring) == self.capacity:
                    self._dropped += 1
                self._ring.append(dict(event))

    # -- views ----------------------------------------------------------------

    def snapshot(self) -> tuple[dict[str, Any], ...]:
        with self._lock:
            return tuple(dict(event) for event in self._ring)

    def tail(self, n: int) -> list[dict[str, Any]]:
        """The last ``n`` events (most recent last), as plain data."""
        if n <= 0:
            return []
        with self._lock:
            events = list(self._ring)[-n:]
        return [dict(event) for event in events]

    @property
    def dropped(self) -> int:
        """How many events the ring has discarded (overwrite + merge)."""
        with self._lock:
            return self._dropped

    def reset(self) -> None:
        with self._lock:
            self._ring.clear()
            self._dropped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def write_jsonl(self, path: str) -> int:
        """Dump the ring as JSONL (one event per line); returns count."""
        events = self.snapshot()
        with open(path, "w", encoding="utf-8") as handle:
            for event in events:
                handle.write(json.dumps(event, sort_keys=True) + "\n")
        return len(events)


#: The module-level functions below delegate to the *current engine
#: context's* journal, mirroring ``spans`` and ``perf.counters``: one
#: shared ring per process by default, a private ring per session when
#: a workload runs under :func:`repro.context.use`.


def journal() -> Journal:
    return _context.current().journal


def record(kind: str, **attrs: Any) -> None:
    """Record one event, stamped with the current correlation ID."""
    ctx = _context.current()
    ctx.journal.record(kind, corr=ctx.corr_id, **attrs)


def tail(n: int) -> list[dict[str, Any]]:
    return journal().tail(n)


def mark() -> int:
    return journal().mark()


def delta_since(position: int) -> list[dict[str, Any]]:
    return journal().delta_since(position)


def merge(events: Iterable[Mapping[str, Any]]) -> None:
    journal().merge(events)


def snapshot() -> tuple[dict[str, Any], ...]:
    return journal().snapshot()


def reset() -> None:
    journal().reset()


def write_jsonl(path: str) -> int:
    return journal().write_jsonl(path)


# -- correlation IDs ----------------------------------------------------------


def correlation_id() -> str | None:
    """The current context's correlation ID (None when unset)."""
    return _context.current().corr_id


def new_corr_id(prefix: str = "req") -> str:
    """A fresh, globally-unique correlation ID.

    Deterministic workloads (the fuzzer, tests) should build their own
    IDs from their seeds instead, so reports stay bit-reproducible.
    """
    return f"{prefix}-{uuid.uuid4().hex[:12]}"


@contextmanager
def correlation(corr_id: str) -> Iterator[str]:
    """Install ``corr_id`` on the current context for the duration.

    Journal events and span attributes recorded inside the block carry
    the ID; the previous ID (usually None) is restored on exit, even
    across exceptions.
    """
    ctx = _context.current()
    previous = ctx.corr_id
    ctx.corr_id = corr_id
    try:
        yield corr_id
    finally:
        ctx.corr_id = previous
