"""Run metadata: make benchmark and fuzz records attributable.

``BENCH_sweep.json`` trajectories are only comparable when each record
says *where* it was measured — interpreter, platform, commit, worker
count.  :func:`run_metadata` collects that once, cheaply, and with no
hard dependency on git being present (source tarballs and installed
wheels report ``git_sha: null``).
"""

from __future__ import annotations

import os
import platform
import subprocess
from datetime import datetime, timezone
from typing import Any


def git_sha() -> str | None:
    """The HEAD commit of the repository containing this package, if any."""
    here = os.path.dirname(os.path.abspath(__file__))
    try:
        completed = subprocess.run(
            ["git", "-C", here, "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=5, check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = completed.stdout.strip()
    return sha if completed.returncode == 0 and sha else None


def run_metadata(**extra: Any) -> dict[str, Any]:
    """Environment fingerprint for a measurement record.

    Keyword arguments (e.g. ``workers=4``, ``command="perf"``) are
    merged in, so drivers can stamp their own knobs without a schema.
    """
    meta: dict[str, Any] = {
        "git_sha": git_sha(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    }
    meta.update(extra)
    return meta
