"""Observability: spans, explanation traces, and run metadata.

Three layers, complementing the flat hit/miss counters of
:mod:`repro.perf`:

* :mod:`repro.obs.spans` — named wall-clock spans with percentile
  summaries; buffered process-wide, shipped across worker processes as
  deltas and merged losslessly (the ``spans`` section of
  ``BENCH_sweep.json``);
* :mod:`repro.obs.trace` — the opt-in evaluation tracer: the full
  "why-false" proof tree behind any verdict of the Section 6 truth
  definition, renderable or emitted as JSONL (``python -m repro
  trace``);
* :mod:`repro.obs.runmeta` — git SHA / interpreter / platform
  fingerprints embedded in benchmark and fuzz reports so trajectories
  are attributable across machines.
"""

from repro.obs import spans
from repro.obs.runmeta import git_sha, run_metadata
from repro.obs.trace import (
    TraceNode,
    Tracer,
    render_why,
    trace_evaluation,
    trace_records,
)

__all__ = [
    "spans",
    "git_sha",
    "run_metadata",
    "TraceNode",
    "Tracer",
    "render_why",
    "trace_evaluation",
    "trace_records",
]
