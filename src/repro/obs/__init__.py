"""Observability: spans, metrics, journal, traces, and run metadata.

Five layers, complementing the flat hit/miss counters of
:mod:`repro.perf`:

* :mod:`repro.obs.spans` — named wall-clock spans with percentile
  summaries; buffered per context, shipped across worker processes as
  deltas and merged losslessly (the ``spans`` section of
  ``BENCH_sweep.json``);
* :mod:`repro.obs.metrics` — the labeled-metrics registry (typed
  counters/gauges/histograms on the :class:`~repro.context.
  EngineContext`) and the *unified snapshot* that folds perf counters,
  cache peaks/hit-rates, span percentiles, and journal depth into one
  document with Prometheus and JSON exporters (``python -m repro
  obs``);
* :mod:`repro.obs.journal` — the flight recorder: a bounded ring of
  structured events (compilations, cache evictions, fallbacks, stage
  skips, oracle verdicts, shard merges) carrying correlation IDs that
  survive process boundaries; fuzz counterexamples attach its tail;
* :mod:`repro.obs.trace` — the opt-in evaluation tracer: the full
  "why-false" proof tree behind any verdict of the Section 6 truth
  definition, renderable or emitted as JSONL (``python -m repro
  trace``);
* :mod:`repro.obs.runmeta` — git SHA / interpreter / platform
  fingerprints embedded in benchmark and fuzz reports so trajectories
  are attributable across machines.
"""

from repro.obs import journal, metrics, spans
from repro.obs.runmeta import git_sha, run_metadata
from repro.obs.trace import (
    TraceNode,
    Tracer,
    render_why,
    trace_evaluation,
    trace_records,
)

__all__ = [
    "journal",
    "metrics",
    "spans",
    "git_sha",
    "run_metadata",
    "TraceNode",
    "Tracer",
    "render_why",
    "trace_evaluation",
    "trace_records",
]
