"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``corpus``
    Render the corpus-wide BAN-vs-AT findings table (experiment E10).

``analyze NAME [--logic {ban,at}] [--explain GOAL] [--certify GOAL]``
    Run one protocol's annotation and print the goal outcomes; with
    ``--explain`` also print the derivation tree of a goal, and with
    ``--certify`` compile the goal into a checked Hilbert proof.

``sweep [--systems N] [--instances M] [--seed S] [--workers W]
[--backend NAME] [--isolated]``
    Run the empirical Theorem 1 soundness sweep (experiment E3);
    ``--workers`` shards it over a process pool and ``--backend``
    selects the semantics backend (``belief`` or ``epistemic``).

``sweep``/``trace``/``fuzz`` accept ``--isolated``: run the whole
command under a fresh :class:`repro.context.EngineContext`, so its
caches, counters, and spans are session-private (nothing read from or
left behind in the process-default context).

``perf [--systems N] [--instances M] [--seed S] [--workers W] [--output PATH]``
    Time the E3 sweep and the good-runs construction (naive vs
    worklist engine, with per-stage span totals), print the cache
    hit/miss table, and write a machine-readable benchmark record
    (default ``BENCH_sweep.json``).

``obs [--systems N] [--instances M] [--seed S] [--workers W]
[--format {prometheus,json}] [--output PATH] [--journal PATH]
[--input PATH]``
    Run the E3 sweep workload under a fresh correlated context and
    export the unified telemetry snapshot — labeled metrics, perf
    counters, cache hit-rates and peaks, span percentiles, journal
    depth — as Prometheus text exposition or JSON.  ``--journal``
    additionally dumps the flight-recorder ring as JSONL; ``--input``
    re-exports a previously saved JSON snapshot instead of running a
    workload.

``trace [--systems N] [--seed S] [--schema NAME] [--instances M]
[--formula TEXT] [--output PATH] [--only-failures]``
    Trace the Section 6 truth definition: evaluate axiom-schema
    instances (or one ``--formula``) over generated systems with the
    explanation tracer on, write the evaluation trees as JSONL
    (default ``TRACE_report.jsonl``), and print the first "why-false"
    proof tree encountered.

``fuzz [--seed S] [--iterations N] [--report PATH] [--oracles F,..]``
    Run the differential fuzzing and fault-injection campaign: random
    well-formed systems, WF fault injection with classification
    oracles, evaluator cache/hide/ground-path differentials,
    engine-vs-semantics derivation replay, adversarial proof mutation,
    per-workload interpretation fuzzing, good-runs construction
    invariants (Theorem 2/3 support, monotonicity, idempotence, engine
    agreement, brute-force optimality), and a periodic
    parallel-vs-sequential sweep comparison, and the belief-vs-epistemic
    cross-backend containment map.  ``--oracles`` selects a
    comma-separated subset of the families (default: all) and
    ``--backend`` picks the semantics backend the replay oracle audits
    against.  Writes a JSON report (default ``FUZZ_report.json``) with
    shrunk counterexamples.

``cointoss``
    Walk the Section 7 construction and optimality story (E5-E7).

``experiments``
    Run all experiment assertions E1-E14 and print a summary line each.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import analyze, compare_corpus
from repro.protocols import (
    andrew_rpc,
    forwarding,
    kerberos,
    needham_schroeder,
    otway_rees,
    wide_mouth_frog,
    x509,
    yahalom,
)

_PROTOCOLS = {
    "kerberos": kerberos,
    "needham-schroeder": needham_schroeder,
    "otway-rees": otway_rees,
    "yahalom": yahalom,
    "wide-mouth-frog": wide_mouth_frog,
    "andrew-rpc": andrew_rpc,
    "courier": forwarding,
    "ccitt-x509": x509,
}


def _cmd_corpus(_args: argparse.Namespace) -> int:
    table = compare_corpus()
    print(table.render())
    return 0 if table.all_as_expected else 1


def _cmd_analyze(args: argparse.Namespace) -> int:
    module = _PROTOCOLS.get(args.name)
    if module is None:
        print(f"unknown protocol {args.name!r}; choose from: "
              f"{', '.join(sorted(_PROTOCOLS))}", file=sys.stderr)
        return 2
    protocol = (
        module.ban_protocol() if args.logic == "ban" else module.at_protocol()
    )
    report = analyze(protocol)
    print(report.pretty())
    if args.explain:
        print()
        print(f"derivation of {args.explain}:")
        print(report.explain_goal(args.explain))
    if args.certify:
        from repro.logic import certify

        goal = next(
            (r.goal for r in report.goal_results
             if r.goal.label == args.certify),
            None,
        )
        if goal is None:
            print(f"no goal labelled {args.certify!r}", file=sys.stderr)
            return 2
        proof = certify(report.derivation, goal.formula)
        proof.check()
        print()
        print(
            f"certified {goal.label}: {len(proof.steps)}-step Hilbert "
            f"proof from {len(proof.premises)} premises (checked)"
        )
        print(proof.pretty())
    return 0 if report.all_as_expected else 1


def _add_isolated(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--isolated", action="store_true",
        help="run in a fresh engine context (session-private caches, "
             "counters, and spans; nothing shared with the process "
             "default)",
    )


def _isolated(handler):
    """Wrap a subcommand so it runs in a fresh :class:`EngineContext`.

    ``--isolated`` gives the command session-private caches, counters,
    and spans: nothing read from (or left behind in) the process-default
    context, which is what a multi-tenant server wants per request.
    """

    def wrapped(args: argparse.Namespace) -> int:
        if getattr(args, "isolated", False):
            from repro import context

            with context.scoped(f"cli-{args.command}"):
                return handler(args)
        return handler(args)

    return wrapped


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.soundness import generate_systems, sweep_systems

    systems = generate_systems(args.systems, base_seed=args.seed)
    report = sweep_systems(
        systems,
        max_instances_per_schema=args.instances,
        workers=args.workers,
        engine=args.engine,
        backend=args.backend,
    )
    print(report.render())
    for violation in report.essential_violations[:10]:
        print(" !", violation)
    return 0 if not report.essential_violations else 1


#: Belief-chain depth of the perf CLI's good-runs benchmark workload.
_GOODRUNS_BENCH_DEPTH = 4


def _cmd_perf(args: argparse.Namespace) -> int:
    from repro import perf
    from repro.obs import run_metadata, spans
    from repro.soundness import generate_systems, sweep_systems

    engines = (
        ("compiled", "interpreted") if args.engine == "both"
        else (args.engine,)
    )
    spans.reset()
    with spans.span("perf.generate"):
        with perf.Stopwatch() as generation:
            systems = generate_systems(args.systems, base_seed=args.seed)
    perf.reset_counters()
    measurements: dict = {
        "generate_systems_s": round(generation.seconds, 6),
    }
    report = None
    for engine in engines:
        with spans.span("perf.sweep_cold", engine=engine):
            with perf.Stopwatch() as cold:
                engine_report = sweep_systems(
                    systems,
                    max_instances_per_schema=args.instances,
                    workers=args.workers,
                    engine=engine,
                    backend=args.backend,
                )
        # A second, identical sweep shows what the session caches
        # (interning, ops memos, hide views, compiled systems) buy on
        # a warm process.
        with spans.span("perf.sweep_warm", engine=engine):
            with perf.Stopwatch() as warm:
                sweep_systems(
                    systems,
                    max_instances_per_schema=args.instances,
                    workers=args.workers,
                    engine=engine,
                    backend=args.backend,
                )
        measurements[f"sweep_cold_{engine}_s"] = round(cold.seconds, 6)
        measurements[f"sweep_warm_{engine}_s"] = round(warm.seconds, 6)
        if report is None:
            # The first engine listed is the adopted default; its
            # numbers also fill the legacy keys so BENCH trajectories
            # stay comparable across records.
            report = engine_report
            measurements["sweep_cold_s"] = round(cold.seconds, 6)
            measurements["sweep_warm_s"] = round(warm.seconds, 6)
        print(
            f"[{engine}] sweep (cold) {cold.seconds:.3f}s | "
            f"sweep (warm) {warm.seconds:.3f}s"
        )
    # Good-runs fixpoint benchmark: the same multi-depth workload
    # through both construction engines, each in a fresh context (cold
    # compilation caches), with the per-stage ``goodruns.stage`` span
    # totals recorded so the worklist win is measured, not asserted.
    from repro import context
    from repro.fuzz.goodruns_oracles import deep_assumptions
    from repro.goodruns import construct_good_runs

    workloads = [
        (system, deep_assumptions(system, _GOODRUNS_BENCH_DEPTH))
        for system in systems
    ]
    goodruns_stage_spans: dict = {}
    for engine in ("naive", "worklist"):
        engine_ctx = context.fresh(f"perf-goodruns-{engine}")
        with context.use(engine_ctx):
            with perf.Stopwatch() as watch:
                for system, assumptions in workloads:
                    construct_good_runs(system, assumptions, engine=engine)
        context.current().absorb(
            engine_ctx.counter_delta(), engine_ctx.span_delta(),
            engine_ctx.journal_delta(), engine_ctx.metrics_delta(),
        )
        # The grouped summary splits ``goodruns.stage`` into
        # per-engine rows directly; no manual filtering of the raw
        # span buffer.
        row = spans.summary(group_by="engine").get(
            f"goodruns.stage{{engine={engine}}}",
            {"count": 0, "total_s": 0.0},
        )
        goodruns_stage_spans[engine] = {
            "stages": row["count"],
            "stage_total_s": row["total_s"],
        }
        measurements[f"goodruns_{engine}_s"] = round(watch.seconds, 6)
        print(
            f"[goodruns/{engine}] construct {watch.seconds:.3f}s | "
            f"{row['count']} stage spans {row['total_s']:.3f}s"
        )
    naive_total = goodruns_stage_spans["naive"]["stage_total_s"]
    worklist_total = goodruns_stage_spans["worklist"]["stage_total_s"]
    goodruns_stage_spans["stage_delta_s"] = round(
        naive_total - worklist_total, 6
    )
    measurements["goodruns_stage_spans"] = goodruns_stage_spans

    measurements.update(
        total_instances=report.total_instances,
        total_violations=report.total_violations,
        essential_violations=len(report.essential_violations),
    )
    print(report.render())
    print()
    print(perf.report())
    print()
    print(spans.render(group_by="engine"))
    print()
    print(f"generation {generation.seconds:.3f}s")
    perf.write_bench_json(
        args.output,
        measurements=measurements,
        parameters={
            "systems": args.systems,
            "instances": args.instances,
            "seed": args.seed,
            "workers": args.workers,
            "engine": args.engine,
            "backend": args.backend,
        },
        spans=spans.summary(),
        meta=run_metadata(command="perf", workers=args.workers,
                          backend=args.backend),
    )
    print(f"wrote {args.output}")
    return 0 if not report.essential_violations else 1


def _cmd_obs(args: argparse.Namespace) -> int:
    import json

    from repro.obs import journal, metrics, run_metadata

    if args.input is not None:
        with open(args.input, "r", encoding="utf-8") as handle:
            snapshot = json.load(handle)
    else:
        from repro import context
        from repro.soundness import generate_systems, sweep_systems

        # The whole workload runs in a fresh context under one
        # correlation ID, so the exported snapshot is exactly this
        # invocation's telemetry — the per-request shape the serve
        # daemon will reuse.
        with context.scoped("cli-obs") as ctx:
            ctx.corr_id = journal.new_corr_id("obs")
            systems = generate_systems(args.systems, base_seed=args.seed)
            sweep_systems(
                systems,
                max_instances_per_schema=args.instances,
                workers=args.workers,
                engine=args.engine,
            )
            snapshot = metrics.unified_snapshot(
                meta=run_metadata(
                    command="obs", systems=args.systems,
                    instances=args.instances, seed=args.seed,
                    workers=args.workers, engine=args.engine,
                )
            )
            if args.journal is not None:
                events = journal.write_jsonl(args.journal)
                print(f"wrote {events} journal events to {args.journal}",
                      file=sys.stderr)
    text = (
        metrics.to_prometheus(snapshot) if args.format == "prometheus"
        else metrics.to_json(snapshot)
    )
    if args.output is not None:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(text)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import itertools
    import json

    from repro.logic.axioms import AXIOMS
    from repro.obs import run_metadata
    from repro.obs.trace import render_why, trace_evaluation, trace_records
    from repro.soundness import generate_systems
    from repro.soundness.sweep import pool_from_system

    if args.schema is not None and args.schema not in AXIOMS:
        print(f"unknown schema {args.schema!r}; choose from: "
              f"{', '.join(sorted(AXIOMS))}", file=sys.stderr)
        return 2
    systems = generate_systems(args.systems, base_seed=args.seed)
    schemas = (
        (AXIOMS[args.schema],) if args.schema is not None
        else tuple(AXIOMS.values())
    )

    evaluations = failures = lines = 0
    first_false: str | None = None
    with open(args.output, "w", encoding="utf-8") as handle:
        meta = run_metadata(
            command="trace", systems=args.systems, seed=args.seed,
            schema=args.schema, formula=args.formula,
        )
        handle.write(json.dumps({"record": "meta", **meta},
                               sort_keys=True) + "\n")
        for index, system in enumerate(systems):
            if args.formula is not None:
                from repro.terms.parser import parse_formula

                targets = [("formula", parse_formula(
                    args.formula, system.vocabulary))]
            else:
                pool = pool_from_system(system)
                targets = [
                    (schema.name, instance)
                    for schema in schemas
                    for instance in itertools.islice(
                        schema.instances(pool), args.instances
                    )
                ]
            for label, instance in targets:
                for run, k in system.points():
                    verdict, root = trace_evaluation(system, instance, run, k)
                    evaluations += 1
                    if not verdict:
                        failures += 1
                        if first_false is None:
                            first_false = render_why(root)
                    if args.only_failures and verdict:
                        continue
                    for record in trace_records(
                        root, schema=label, system=index
                    ):
                        handle.write(
                            json.dumps(record, sort_keys=True) + "\n"
                        )
                        lines += 1
    print(
        f"trace: {evaluations} evaluations ({failures} false) over "
        f"{args.systems} system(s); {lines} trace records"
    )
    if first_false is not None:
        print()
        print("first why-false tree:")
        print(first_false)
    print(f"wrote {args.output}")
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.fuzz import ORACLE_FAMILIES, FuzzConfig, run_fuzz

    if args.oracles.strip().lower() == "all":
        oracles = ORACLE_FAMILIES
    else:
        oracles = tuple(
            name.strip() for name in args.oracles.split(",") if name.strip()
        )
        unknown = set(oracles) - set(ORACLE_FAMILIES)
        if unknown:
            print(
                f"unknown oracle families {sorted(unknown)}; "
                f"choose from {', '.join(ORACLE_FAMILIES)}"
            )
            return 2
    config = FuzzConfig(
        seed=args.seed,
        iterations=args.iterations,
        parallel_every=args.parallel_every,
        parallel_workers=args.workers,
        oracles=oracles,
        backend=args.backend,
    )
    report = run_fuzz(config)
    print(report.render())
    report.write(args.report)
    print(f"wrote {args.report}")
    return 0 if report.ok else 1


def _cmd_cointoss(_args: argparse.Namespace) -> int:
    from repro.goodruns import (
        build_cointoss_example,
        build_corrected_cointoss_example,
        construct_good_runs,
        optimality_report,
        supports,
    )

    for example, label in (
        (build_cointoss_example(), "mutually mistaken (no I2)"),
        (build_corrected_cointoss_example(), "corrected (I2 holds)"),
    ):
        result = construct_good_runs(example.system, example.assumptions)
        report = optimality_report(example.system, example.assumptions)
        print(f"--- {label} ---")
        for depth, stage in enumerate(result.stages):
            print(f"  G^{depth} = {stage.describe()}")
        print(f"  supports I: "
              f"{supports(example.system, result.vector, example.assumptions)}")
        print(f"  supporting vectors: {len(report.supporting)}; "
              f"optimum exists: {report.has_optimum}")
    return 0


def _cmd_experiments(_args: argparse.Namespace) -> int:
    import subprocess

    return subprocess.call(
        [sys.executable, "-m", "pytest", "tests/test_experiments.py", "-v"]
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import ServeConfig, run_daemon

    config = ServeConfig(
        host=args.host, port=args.port, workers=args.workers,
        queue_size=args.queue_size, max_batch=args.max_batch,
        request_timeout_s=args.timeout,
        default_backend=args.backend,
    )
    try:
        asyncio.run(run_daemon(config))
    except KeyboardInterrupt:
        pass
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of Abadi & Tuttle, PODC 1991",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("corpus", help="render the E10 findings table")

    analyze_parser = sub.add_parser("analyze", help="analyze one protocol")
    analyze_parser.add_argument("name", choices=sorted(_PROTOCOLS))
    analyze_parser.add_argument("--logic", choices=["ban", "at"],
                                default="at")
    analyze_parser.add_argument("--explain", metavar="GOAL", default=None)
    analyze_parser.add_argument("--certify", metavar="GOAL", default=None)

    sweep_parser = sub.add_parser("sweep", help="empirical Theorem 1 (E3)")
    sweep_parser.add_argument("--systems", type=int, default=3)
    sweep_parser.add_argument("--instances", type=int, default=60)
    sweep_parser.add_argument("--seed", type=int, default=0)
    sweep_parser.add_argument(
        "--workers", type=int, default=1,
        help="process-pool workers for the sweep (1 = in-process)",
    )
    sweep_parser.add_argument(
        "--engine", choices=["compiled", "interpreted"], default="compiled",
        help="evaluation engine for the sweep (default: compiled)",
    )
    sweep_parser.add_argument(
        "--backend", default="belief",
        help="semantics backend from the context registry "
             "(belief, epistemic; default: belief)",
    )
    _add_isolated(sweep_parser)

    perf_parser = sub.add_parser(
        "perf", help="time the E3 sweep and dump cache statistics"
    )
    perf_parser.add_argument("--systems", type=int, default=3)
    perf_parser.add_argument("--instances", type=int, default=60)
    perf_parser.add_argument("--seed", type=int, default=0)
    perf_parser.add_argument("--workers", type=int, default=1)
    perf_parser.add_argument(
        "--engine", choices=["compiled", "interpreted", "both"],
        default="both",
        help="which engine(s) to time (default: both, compiled first)",
    )
    perf_parser.add_argument(
        "--backend", default="belief",
        help="semantics backend the sweeps run under (default: belief)",
    )
    perf_parser.add_argument(
        "--output", default="BENCH_sweep.json",
        help="where to write the machine-readable benchmark record",
    )

    obs_parser = sub.add_parser(
        "obs", help="export the unified telemetry snapshot"
    )
    obs_parser.add_argument("--systems", type=int, default=3)
    obs_parser.add_argument("--instances", type=int, default=60)
    obs_parser.add_argument("--seed", type=int, default=0)
    obs_parser.add_argument(
        "--workers", type=int, default=1,
        help="process-pool workers for the sweep workload",
    )
    obs_parser.add_argument(
        "--engine", choices=["compiled", "interpreted"], default="compiled",
    )
    obs_parser.add_argument(
        "--format", choices=["prometheus", "json"], default="prometheus",
        help="exposition format for the snapshot (default: prometheus)",
    )
    obs_parser.add_argument(
        "--output", default=None,
        help="write the exposition here instead of stdout",
    )
    obs_parser.add_argument(
        "--journal", default=None,
        help="also dump the flight-recorder ring as JSONL to this path",
    )
    obs_parser.add_argument(
        "--input", default=None,
        help="re-export a saved JSON snapshot instead of running a workload",
    )

    trace_parser = sub.add_parser(
        "trace", help="explanation-trace schema instances over systems"
    )
    trace_parser.add_argument("--systems", type=int, default=1)
    trace_parser.add_argument("--seed", type=int, default=0)
    trace_parser.add_argument(
        "--schema", default=None,
        help="trace one axiom schema (default: all registered schemas)",
    )
    trace_parser.add_argument(
        "--instances", type=int, default=2,
        help="instances per schema to trace (each at every point)",
    )
    trace_parser.add_argument(
        "--formula", default=None,
        help="trace this formula instead of schema instances",
    )
    trace_parser.add_argument(
        "--output", default="TRACE_report.jsonl",
        help="where to write the JSONL trace records",
    )
    trace_parser.add_argument(
        "--only-failures", action="store_true",
        help="write trace records only for false verdicts",
    )
    _add_isolated(trace_parser)

    fuzz_parser = sub.add_parser(
        "fuzz", help="differential run-fuzzing and fault injection"
    )
    fuzz_parser.add_argument("--seed", type=int, default=0)
    fuzz_parser.add_argument("--iterations", type=int, default=200)
    fuzz_parser.add_argument(
        "--report", default="FUZZ_report.json",
        help="where to write the JSON campaign report",
    )
    fuzz_parser.add_argument(
        "--parallel-every", type=int, default=50,
        help="run the parallel-sweep oracle every Nth iteration (0 = never)",
    )
    fuzz_parser.add_argument(
        "--workers", type=int, default=2,
        help="process-pool width for the parallel-sweep oracle",
    )
    fuzz_parser.add_argument(
        "--oracles", default="all",
        help="comma-separated oracle families to run (wf, differential, "
             "compiled, parallel, engine_replay, proof_mutation, "
             "interpretation, goodruns_construction, cross_backend; "
             "default: all)",
    )
    fuzz_parser.add_argument(
        "--backend", default="belief",
        help="semantics backend the engine-replay oracle audits against "
             "(the cross_backend oracle always compares belief vs. "
             "epistemic; default: belief)",
    )
    _add_isolated(fuzz_parser)

    serve_parser = sub.add_parser(
        "serve", help="run the analysis daemon (HTTP over asyncio)"
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=8642)
    serve_parser.add_argument(
        "--workers", type=int, default=2,
        help="concurrent analysis workers (default: 2)",
    )
    serve_parser.add_argument(
        "--queue-size", type=int, default=64,
        help="admission queue bound; beyond it requests get 429",
    )
    serve_parser.add_argument(
        "--max-batch", type=int, default=8,
        help="max same-system requests batched into one engine context",
    )
    serve_parser.add_argument(
        "--timeout", type=float, default=30.0,
        help="per-request execution timeout in seconds",
    )
    serve_parser.add_argument(
        "--backend", default="belief",
        help="semantics backend for requests that do not name one "
             "(default: belief)",
    )

    sub.add_parser("cointoss", help="the Section 7 story (E5-E7)")
    sub.add_parser("experiments", help="run all E1-E14 assertions")

    args = parser.parse_args(argv)
    handlers = {
        "corpus": _cmd_corpus,
        "analyze": _cmd_analyze,
        "sweep": _isolated(_cmd_sweep),
        "perf": _cmd_perf,
        "obs": _cmd_obs,
        "trace": _isolated(_cmd_trace),
        "fuzz": _isolated(_cmd_fuzz),
        "serve": _cmd_serve,
        "cointoss": _cmd_cointoss,
        "experiments": _cmd_experiments,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
