"""Adversarial run mutators (fault injection).

Each mutator takes a *well-formed* run and performs state surgery to
produce a run that violates — or, for the benign mutators, provably
preserves — specific well-formedness conditions of Section 5.  Every
mutation is tagged with the set of WF condition names it is designed to
trip, so the oracle (:mod:`repro.fuzz.oracles`) can assert that
:mod:`repro.model.wellformed` flags exactly the injected class.

The mutators are written to be *surgical*: injected actions are
appended as a fresh final state built from materials (keys, nonces)
checked against the victim's seen-set, so a mutation tagged ``{"WF4"}``
does not incidentally trip WF3 or WF5.  Mutators whose preconditions a
run does not meet return ``None``; the harness then tries another.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Callable

from repro.model.actions import Action, Internal, NewKey, Receive, Send
from repro.model.runs import Run
from repro.model.states import EnvState, GlobalState, LocalState
from repro.model.submsgs import seen_submsgs_all
from repro.terms.atoms import Key, Nonce, Principal
from repro.terms.base import Message
from repro.terms.messages import combined, encrypted, forwarded, group
from repro.terms.ops import walk


@dataclass(frozen=True)
class Mutation:
    """One applied fault injection."""

    name: str
    run: Run
    #: WF condition names the fault should trip (empty: benign).
    expected: frozenset[str]
    #: True: the checker must flag *exactly* these classes; False: at
    #: least these (cascading secondary violations are acceptable).
    exact: bool
    detail: str


MutatorFn = Callable[[random.Random, Run], "Mutation | None"]


@dataclass(frozen=True)
class Materials:
    """Raw term material gleaned from a run, for building injections."""

    principals: tuple[Principal, ...]
    keys: tuple[Key, ...]
    nonces: tuple[Nonce, ...]


def materials_of(run: Run) -> Materials:
    """Collect the keys and nonces circulating anywhere in the run."""
    keys: dict[Key, None] = {}
    nonces: dict[Nonce, None] = {}
    for principal in run.all_principals:
        for key in sorted(run.keyset(principal, run.end_time), key=str):
            keys.setdefault(key, None)
    for _who, action in run.state(run.end_time).env.history:
        message = getattr(action, "message", None)
        if message is None:
            continue
        for node in walk(message):
            if isinstance(node, Key):
                keys.setdefault(node, None)
            elif isinstance(node, Nonce):
                nonces.setdefault(node, None)
    if not nonces:
        nonces[Nonce("Nfz")] = None
    return Materials(run.principals, tuple(keys), tuple(nonces))


# ---------------------------------------------------------------------------
# State-surgery helpers
# ---------------------------------------------------------------------------


def _append_action(run: Run, principal: Principal, action: Action) -> Run:
    """Extend the run by one state in which ``principal`` performs
    ``action`` — the raw (unchecked) analogue of a builder step.

    Transit bookkeeping mirrors the builder (a send feeds the
    recipient's buffer, a receive consumes its message when buffered),
    so an injected action is only as ill-formed as intended: a WF4
    forgery, say, must not incidentally trip the WFB buffer-discipline
    check.  Buffers are only touched for principals the run actually
    tracks (hand-built runs without buffer entries stay untracked).
    """
    last = run.states[-1]
    env = last.env.record(principal, action)
    if isinstance(action, Send):
        buffers = dict(env.buffer_map)
        if action.recipient in buffers:
            buffers[action.recipient] = (
                buffers[action.recipient] + (action.message,)
            )
            env = env.with_buffers(buffers)
    elif isinstance(action, Receive):
        buffers = dict(env.buffer_map)
        pending = buffers.get(principal, ())
        if action.message in pending:
            index = pending.index(action.message)
            buffers[principal] = pending[:index] + pending[index + 1:]
            env = env.with_buffers(buffers)
    if principal == run.environment:
        if isinstance(action, NewKey):
            env = EnvState(env.history, env.keys | {action.key},
                           env.buffers, env.data)
        state = last.with_env(env)
    else:
        local = last.local(principal).after(action)
        state = last.with_local(principal, local).with_env(env)
    return replace(run, states=run.states + (state,))


def _remove_history_entry(run: Run, who: Principal, env_index: int) -> Run:
    """Delete one global-history entry (and its local mirror) from every
    state that contains it.

    Histories are cumulative, so the entry sits at a fixed index in the
    environment history of every state from its occurrence on; the same
    holds for the performing principal's local history.
    """
    final_env = run.states[-1].env.history
    entry = final_env[env_index]
    local_index = None
    if who != run.environment:
        action = entry[1]
        history = run.states[-1].local(who).history
        # The local history mirrors the principal's own global entries
        # in order; locate the corresponding position.
        position = sum(
            1 for other_who, _a in final_env[:env_index] if other_who == who
        )
        assert history[position] is action or history[position] == action
        local_index = position

    states = []
    for state in run.states:
        env = state.env
        if len(env.history) > env_index and env.history[env_index] == entry:
            env = EnvState(
                env.history[:env_index] + env.history[env_index + 1:],
                env.keys, env.buffers, env.data,
            )
            state = state.with_env(env)
        if local_index is not None:
            local = state.local(who)
            if len(local.history) > local_index:
                state = state.with_local(
                    who,
                    LocalState(
                        local.history[:local_index]
                        + local.history[local_index + 1:],
                        local.keys, local.data,
                    ),
                )
        states.append(state)
    return replace(run, states=tuple(states))


def _seen_at_end(run: Run, principal: Principal) -> frozenset[Message]:
    keys = run.keyset(principal, run.end_time)
    received = run.received_messages(principal, run.end_time)
    return seen_submsgs_all(keys, received)


def _unseen(run: Run, principal: Principal, candidates) -> Message | None:
    seen = _seen_at_end(run, principal)
    for candidate in candidates:
        if candidate not in seen:
            return candidate
    return None


def _single_send_with_receive(run: Run) -> list[tuple[int, Principal, Send]]:
    """Indices of sends that are the *unique* send of their (message,
    recipient) pair and whose recipient actually received the message —
    dropping or delaying such a send must orphan the receive (WF2)."""
    history = run.states[-1].env.history
    counts: dict[tuple[Message, Principal], int] = {}
    for _who, action in history:
        if isinstance(action, Send):
            pair = (action.message, action.recipient)
            counts[pair] = counts.get(pair, 0) + 1
    out = []
    for index, (who, action) in enumerate(history):
        if not isinstance(action, Send):
            continue
        if counts[(action.message, action.recipient)] != 1:
            continue
        received = run.received_messages(action.recipient, run.end_time)
        if action.message in received:
            out.append((index, who, action))
    return out


def _send_time(run: Run, env_index: int) -> int:
    """The time at which the env-history entry at ``env_index`` was
    performed (the first state whose history contains it)."""
    for k in run.times:
        if len(run.state(k).env.history) > env_index:
            return k
    raise AssertionError("entry index beyond final history")


# ---------------------------------------------------------------------------
# The mutators
# ---------------------------------------------------------------------------


def mutate_dirty_start(rng: random.Random, run: Run) -> Mutation | None:
    """WF0: non-empty buffer or history in the first state."""
    materials = materials_of(run)
    first = run.states[0]
    variant = rng.choice(("buffer", "local_history", "global_history"))
    junk = rng.choice(materials.nonces)
    if variant == "buffer":
        target = rng.choice(run.principals)
        buffers = dict(first.env.buffer_map)
        buffers[target] = buffers.get(target, ()) + (junk,)
        state = first.with_env(first.env.with_buffers(buffers))
        detail = f"pre-seeded {target}'s buffer with {junk}"
    elif variant == "local_history":
        target = rng.choice(run.principals)
        local = first.local(target)
        state = first.with_local(
            target,
            LocalState((Internal("ghost"),) + local.history, local.keys,
                       local.data),
        )
        detail = f"ghost action in {target}'s initial history"
    else:
        env = first.env
        state = first.with_env(
            EnvState(((run.environment, Internal("ghost")),) + env.history,
                     env.keys, env.buffers, env.data)
        )
        detail = "ghost action in the initial global history"
    mutated = replace(run, states=(state,) + run.states[1:])
    return Mutation("dirty_start", mutated, frozenset({"WF0"}), True, detail)


def mutate_shrink_keyset(rng: random.Random, run: Run) -> Mutation | None:
    """WF1: a key set silently loses a key in an appended final state."""
    candidates = [
        p for p in run.all_principals if run.keyset(p, run.end_time)
    ]
    if not candidates:
        return None
    victim = rng.choice(candidates)
    lost = rng.choice(sorted(run.keyset(victim, run.end_time), key=str))
    last = run.states[-1]
    if victim == run.environment:
        env = last.env
        state = last.with_env(
            EnvState(env.history, env.keys - {lost}, env.buffers, env.data)
        )
    else:
        local = last.local(victim)
        state = last.with_local(
            victim, LocalState(local.history, local.keys - {lost}, local.data)
        )
    mutated = replace(run, states=run.states + (state,))
    return Mutation(
        "shrink_keyset", mutated, frozenset({"WF1"}), True,
        f"{victim} silently lost {lost}",
    )


def mutate_receive_unsent(rng: random.Random, run: Run) -> Mutation | None:
    """WF2: a principal receives a message nobody sent to it."""
    materials = materials_of(run)
    receiver = rng.choice(run.all_principals)
    nonce = rng.choice(materials.nonces)
    candidates = [
        group(nonce, rng.choice(materials.nonces)),
        forwarded(nonce),
        nonce,
    ]
    history = run.states[-1].env.history
    sent_to_receiver = {
        action.message
        for _who, action in history
        if isinstance(action, Send) and action.recipient == receiver
    }
    message = next(
        (m for m in candidates if m not in sent_to_receiver), None
    )
    if message is None:
        return None
    mutated = _append_action(run, receiver, Receive(message))
    return Mutation(
        "receive_unsent", mutated, frozenset({"WF2"}), True,
        f"{receiver} received {message} out of thin air",
    )


def mutate_drop_send(rng: random.Random, run: Run) -> Mutation | None:
    """WF2 + WFB: the unique send matching some receive is dropped.

    Dropping the history entry leaves the message sitting in the
    recipient's buffer at the send's own state with no send to explain
    it, so the buffer-discipline check fires alongside the orphaned
    receive — both are real consequences of the same surgery.
    """
    candidates = _single_send_with_receive(run)
    if not candidates:
        return None
    index, who, send = rng.choice(candidates)
    mutated = _remove_history_entry(run, who, index)
    return Mutation(
        "drop_send", mutated, frozenset({"WF2", "WFB"}), True,
        f"dropped {who}'s send of {send.message} to {send.recipient}",
    )


def mutate_duplicate_send(rng: random.Random, run: Run) -> Mutation | None:
    """Benign: re-sending an old message with an unchanged key set must
    keep the run well-formed (seen-sets only grow, so every component
    the duplicate says was already sayable)."""
    history = run.states[-1].env.history
    candidates = []
    for index, (who, action) in enumerate(history):
        if not isinstance(action, Send):
            continue
        sent_at = _send_time(run, index)
        if run.keyset(who, sent_at) == run.keyset(who, run.end_time):
            candidates.append((who, action))
    if not candidates:
        return None
    who, send = rng.choice(candidates)
    mutated = _append_action(run, who, send)
    return Mutation(
        "duplicate_send", mutated, frozenset(), True,
        f"{who} re-sent {send.message} to {send.recipient}",
    )


def mutate_reorder_send_receive(rng: random.Random, run: Run) -> Mutation | None:
    """WF2 + WFB: a send is delayed past its matching receive.

    Between the original send time and the receive the message still
    sits in the buffer with no send on record, and after the delayed
    re-send it is in transit despite already having been received — the
    buffer-discipline check flags both windows."""
    candidates = [
        (index, who, send)
        for index, who, send in _single_send_with_receive(run)
        if run.keyset(who, _send_time(run, index))
        == run.keyset(who, run.end_time)
    ]
    if not candidates:
        return None
    index, who, send = rng.choice(candidates)
    mutated = _remove_history_entry(run, who, index)
    mutated = _append_action(mutated, who, send)
    return Mutation(
        "reorder_send_receive", mutated, frozenset({"WF2", "WFB"}), True,
        f"delayed {who}'s send of {send.message} past its receive",
    )


def mutate_forge_from_field(rng: random.Random, run: Run) -> Mutation | None:
    """WF4: a system principal originates a message whose from field
    names somebody else."""
    if len(run.all_principals) < 2:
        return None
    forger = rng.choice(run.principals)
    scapegoats = [p for p in run.all_principals if p != forger]
    scapegoat = rng.choice(scapegoats)
    materials = materials_of(run)
    nonce = rng.choice(materials.nonces)
    held = sorted(run.keyset(forger, run.end_time), key=str)
    candidates: list[Message] = [
        combined(nonce, rng.choice(materials.nonces), scapegoat)
    ]
    if held:
        candidates.insert(
            rng.randint(0, 1), encrypted(nonce, rng.choice(held), scapegoat)
        )
    forged = _unseen(run, forger, candidates)
    if forged is None:
        return None
    recipient = rng.choice(run.all_principals)
    mutated = _append_action(run, forger, Send(forged, recipient))
    return Mutation(
        "forge_from_field", mutated, frozenset({"WF4"}), True,
        f"{forger} originated {forged} claiming it came from {scapegoat}",
    )


def mutate_forward_unseen(rng: random.Random, run: Run) -> Mutation | None:
    """WF5: a system principal forwards something it never saw."""
    forwarder = rng.choice(run.principals)
    materials = materials_of(run)
    nonce = rng.choice(materials.nonces)
    body = _unseen(
        run, forwarder,
        list(materials.nonces) + [group(nonce, nonce)],
    )
    if body is None:
        return None
    recipient = rng.choice(run.all_principals)
    mutated = _append_action(run, forwarder, Send(forwarded(body), recipient))
    return Mutation(
        "forward_unseen", mutated, frozenset({"WF5"}), True,
        f"{forwarder} forwarded {body} without having seen it",
    )


def mutate_unheld_key_cipher(rng: random.Random, run: Run) -> Mutation | None:
    """WF3: a principal (the environment half the time — the key-leak /
    perfect-encryption case) emits a ciphertext under a key it neither
    holds nor ever saw used."""
    materials = materials_of(run)
    actor = rng.choice((run.environment, rng.choice(run.principals)))
    held = run.keyset(actor, run.end_time)
    unheld = [k for k in materials.keys if k not in held]
    if not unheld:
        unheld = [Key("Kfz")]
    key = rng.choice(unheld)
    nonce = rng.choice(materials.nonces)
    # From field: the actor itself for system principals (anything else
    # would also trip WF4); the exempt environment may lie freely.
    sender = (
        actor if actor != run.environment
        else rng.choice(run.all_principals)
    )
    cipher = _unseen(run, actor, [encrypted(nonce, key, sender)])
    if cipher is None:
        return None
    recipient = rng.choice(run.all_principals)
    mutated = _append_action(run, actor, Send(cipher, recipient))
    return Mutation(
        "unheld_key_cipher", mutated, frozenset({"WF3"}), True,
        f"{actor} encrypted under {key} without holding it",
    )


def mutate_buffer_junk(rng: random.Random, run: Run) -> Mutation | None:
    """WFB: the final state's in-transit buffer drifts from the history.

    Either slips an extra message into a tracked buffer (a message the
    history never put in transit) or vanishes one that should still be
    pending.  Only the final state is touched, so WF0 stays quiet and
    the mutation is exactly a buffer-discipline fault.
    """
    last = run.states[-1]
    tracked = [principal for principal, _buffer in last.env.buffers]
    if not tracked or len(run.states) < 2:
        return None
    buffers = dict(last.env.buffer_map)
    pending = [
        (principal, buffers[principal]) for principal in tracked
        if buffers.get(principal)
    ]
    if pending and rng.random() < 0.5:
        victim, buffer = rng.choice(pending)
        dropped = rng.choice(buffer)
        index = buffer.index(dropped)
        buffers[victim] = buffer[:index] + buffer[index + 1:]
        detail = f"vanished in-transit {dropped} from {victim}'s buffer"
    else:
        victim = rng.choice(tracked)
        junk = rng.choice(materials_of(run).nonces)
        buffers[victim] = buffers.get(victim, ()) + (junk,)
        detail = f"slipped {junk} into {victim}'s in-transit buffer"
    state = last.with_env(last.env.with_buffers(buffers))
    mutated = replace(run, states=run.states[:-1] + (state,))
    return Mutation(
        "buffer_junk", mutated, frozenset({"WFB"}), True, detail
    )


#: Registry of all mutators, in presentation order.
MUTATORS: dict[str, MutatorFn] = {
    "dirty_start": mutate_dirty_start,
    "shrink_keyset": mutate_shrink_keyset,
    "receive_unsent": mutate_receive_unsent,
    "drop_send": mutate_drop_send,
    "duplicate_send": mutate_duplicate_send,
    "reorder_send_receive": mutate_reorder_send_receive,
    "buffer_junk": mutate_buffer_junk,
    "forge_from_field": mutate_forge_from_field,
    "forward_unseen": mutate_forward_unseen,
    "unheld_key_cipher": mutate_unheld_key_cipher,
}


def apply_random_mutator(rng: random.Random, run: Run) -> Mutation | None:
    """Apply a randomly chosen applicable mutator, or None if none fit.

    The candidate order is a seeded shuffle of the *name-sorted* registry,
    never of its insertion order, so registering a new mutator cannot
    silently change what existing seeds reproduce.
    """
    names = sorted(MUTATORS)
    rng.shuffle(names)
    for name in names:
        mutation = MUTATORS[name](rng, run)
        if mutation is not None:
            return mutation
    return None
