"""Good-runs construction oracles: fuzzing the Theorem 2/3 pipeline.

The iterative construction (:mod:`repro.goodruns.construction`) is a
semantic fixpoint, and its contract decomposes into mechanically
checkable invariants:

* **support** (Theorem 2) — the constructed vector supports every
  assumption at every time-0 point.  The theorem carries an unstated
  premise (see ``tests/test_theorem2_property.py``): assumption bodies
  must be *run-constant* — true at every point of a run or at none —
  because belief quantifies over all times of the possible runs while
  the construction filters at time 0 only.  Failures whose body is not
  run-constant relative to the constructed vector are therefore
  theorem-premise violations, not implementation bugs, and are
  filtered out (the sampler only emits run-constant bodies, so this
  filter is only load-bearing for nested beliefs, whose inner belief
  truth legitimately varies with time).
* **monotonicity** — stages shrink pointwise: ``G^j ⊆ G^{j-1}``.
* **idempotence** — the constructed vector is a fixpoint of one more
  application of *all* strata (:func:`repro.goodruns.construction.
  refine_once`).  This holds unconditionally under I1: belief-free
  bodies are vector-independent and beliefs sit in monotone positions,
  so everything that survived the staged filters survives the replay
  against the final (smaller) vector.
* **engine agreement** — the worklist and naive engines produce
  byte-identical stage tuples.
* **optimality** (Theorem 3) — on small systems with depth-1
  run-constant assumptions (where I2 is vacuous and the theorem's
  premises hold), the constructed vector equals the brute-force
  maximum of all supporting vectors.
"""

from __future__ import annotations

import random
from typing import Callable, Sequence

from repro.errors import ReproError
from repro.goodruns.assumptions import InitialAssumptions
from repro.goodruns.construction import (
    ConstructionResult,
    construct_good_runs,
    refine_once,
    unsupported_assumptions,
)
from repro.goodruns.optimality import optimality_report
from repro.model.system import System
from repro.semantics.compiler import CompiledSystem, compiled_for
from repro.terms.atoms import Principal
from repro.terms.formulas import Believes, Formula, Truth
from repro.terms.ops import is_ground

from repro.fuzz.oracles import OracleFailure, _mentions_belief, sample_formulas


def _run_constant(compiled: CompiledSystem, formula: Formula) -> bool:
    """True iff the formula's truth never moves within any single run.

    Decided semantically on the compiled bitset: per run, the formula
    holds at every point or at none.  Unanalyzable formulas are *not*
    run-constant (callers treat them conservatively).
    """
    if not is_ground(formula):
        return False
    bits = compiled.truth_bits(formula)
    if bits is None:
        return False
    for run in compiled.system.runs:
        mask = compiled.run_mask(run.name)
        got = bits & mask
        if got != 0 and got != mask:
            return False
    return True


def sample_assumption_vector(
    rng: random.Random,
    system: System,
    count: int,
) -> InitialAssumptions | None:
    """A random I1-respecting assumption vector over the system.

    Bodies are drawn from the same vocabulary pool as the evaluator
    differentials (:func:`sample_formulas`) and prefiltered to the
    run-constant ones (the Theorem 2 premise); each becomes
    ``P believes body`` for a random principal.  One depth-2 chain
    ``P believes Q believes body`` is added per vector — I2-closed, so
    the optimality gate stays honest — keeping the multi-stage fixpoint
    machinery on the hook.  Returns None when the pool yields nothing
    usable for this workload.
    """
    principals = system.principals()
    if not principals:
        return None
    compiled = compiled_for(system)
    candidates = sample_formulas(rng, system, count * 3)
    bodies = [
        formula
        for formula in dict.fromkeys(candidates)
        if not _mentions_belief(formula) and _run_constant(compiled, formula)
    ]
    if not bodies:
        return None
    assignment: dict[Principal, list[Formula]] = {}
    for body in bodies[:count]:
        principal = rng.choice(principals)
        assignment.setdefault(principal, []).append(
            Believes(principal, body)
        )
    # One nested chain, closed under I2 (the inner belief is also an
    # assumption of its own principal).
    body = rng.choice(bodies)
    outer, inner = rng.choice(principals), rng.choice(principals)
    inner_belief = Believes(inner, body)
    assignment.setdefault(inner, []).append(inner_belief)
    assignment.setdefault(outer, []).append(Believes(outer, inner_belief))
    return InitialAssumptions.of(
        {
            principal: tuple(dict.fromkeys(formulas))
            for principal, formulas in assignment.items()
        }
    )


def deep_assumptions(system: System, depth: int) -> InitialAssumptions:
    """A deterministic multi-depth, I2-closed benchmark vector.

    Builds one belief chain of the given depth per principal (owners
    cycling through the system's principals) and closes it under
    suffixes, so every stratum ``1..depth`` is populated — the
    worklist-vs-naive span benchmark needs stages that all do work.
    Bodies are run-constant pool formulas when available, ``Truth()``
    otherwise.
    """
    from repro.soundness.sweep import pool_from_system

    principals = system.principals()
    compiled = compiled_for(system)
    bodies = [
        formula
        for formula in pool_from_system(system).formulas
        if not _mentions_belief(formula) and _run_constant(compiled, formula)
    ] or [Truth()]
    assignment: dict[Principal, list[Formula]] = {
        principal: [] for principal in principals
    }
    for i, _principal in enumerate(principals):
        chain: Formula = bodies[i % len(bodies)]
        for level in range(1, depth + 1):
            owner = principals[(i + level) % len(principals)]
            chain = Believes(owner, chain)
            assignment[owner].append(chain)
    return InitialAssumptions.of(
        {
            principal: tuple(dict.fromkeys(formulas))
            for principal, formulas in assignment.items()
            if formulas
        }
    )


def _search_space(system: System) -> int:
    """Candidate-vector count of the brute-force optimality search."""
    return (2 ** len(system.runs)) ** len(system.principals())


def _vectors_equal(a, b, system: System) -> bool:
    return a.leq(b, system) and b.leq(a, system)


def check_goodruns_construction(
    system: System,
    assumptions: InitialAssumptions,
    pattern_hide: bool = False,
    optimality_cap: int = 4096,
    construct: Callable[..., ConstructionResult] | None = None,
) -> list[OracleFailure]:
    """Run the construction and check every invariant it promises.

    ``construct`` overrides the construction under test (the planted-bug
    tests inject a deliberately broken one); None means the module-level
    :func:`construct_good_runs` — resolved at call time, so
    monkeypatching this module's global works too.
    """
    default_engine = construct is None
    if construct is None:
        construct = construct_good_runs
    failures: list[OracleFailure] = []
    result = construct(system, assumptions, pattern_hide=pattern_hide)

    # Theorem 2: support, filtered through the run-constancy premise.
    support_compiled = compiled_for(
        system, result.vector, pattern_hide=pattern_hide
    )
    for principal, formula, run_name in unsupported_assumptions(
        system, result.vector, assumptions, pattern_hide
    ):
        assert isinstance(formula, Believes)
        if not _run_constant(support_compiled, formula.body):
            continue
        failures.append(
            OracleFailure(
                "goodruns_support",
                f"constructed vector does not support {principal}'s "
                f"assumption at ({run_name}, 0); vector "
                f"{result.vector.describe()}",
                run_name=run_name,
                formula=str(formula),
                time=0,
            )
        )

    # Stagewise monotonicity: G^j ⊆ G^{j-1} pointwise.
    for j in range(1, len(result.stages)):
        if not result.stages[j].leq(result.stages[j - 1], system):
            failures.append(
                OracleFailure(
                    "goodruns_monotone",
                    f"stage {j} is not contained in stage {j - 1}: "
                    f"{result.stages[j].describe()} vs "
                    f"{result.stages[j - 1].describe()}",
                )
            )
            break

    # Fixpoint idempotence: one more application of all strata is a no-op.
    try:
        refined = refine_once(
            system, result.vector, assumptions, pattern_hide
        )
    except ReproError as error:
        refined = None
        failures.append(
            OracleFailure(
                "goodruns_idempotent",
                f"re-applying the strata at the fixpoint raised {error}",
            )
        )
    if refined is not None and not _vectors_equal(
        refined, result.vector, system
    ):
        failures.append(
            OracleFailure(
                "goodruns_idempotent",
                "re-applying the strata moved the constructed vector: "
                f"{result.vector.describe()} -> {refined.describe()}",
            )
        )

    # Engine differential: worklist and naive stages are byte-identical.
    if default_engine:
        naive = construct_good_runs(
            system, assumptions, pattern_hide=pattern_hide, engine="naive"
        )
        if naive.stages != result.stages:
            failures.append(
                OracleFailure(
                    "goodruns_engines",
                    "worklist stages diverge from the naive loop: "
                    f"{[s.describe() for s in result.stages]} vs "
                    f"{[s.describe() for s in naive.stages]}",
                )
            )

    # Theorem 3 (brute force): only where its premises provably hold —
    # depth ≤ 1 (I2 vacuous, bodies belief-free and run-constant by the
    # support filter above) on small-enough search spaces.
    if (
        assumptions.max_depth <= 1
        and assumptions.satisfies_i2()
        and _search_space(system) <= optimality_cap
        and all(
            _run_constant(support_compiled, formula.body)
            for _p, formula in assumptions.all_formulas()
            if isinstance(formula, Believes)
        )
    ):
        report = optimality_report(system, assumptions, pattern_hide)
        if report.maximum is None:
            failures.append(
                OracleFailure(
                    "goodruns_optimal",
                    "no maximum supporting vector exists although I1+I2 "
                    f"hold ({len(report.supporting)} supporting vectors)",
                )
            )
        elif not report.is_optimum(result.vector, system):
            failures.append(
                OracleFailure(
                    "goodruns_optimal",
                    "constructed vector is not the brute-force maximum: "
                    f"constructed {result.vector.describe()}, maximum "
                    f"{report.maximum.describe()}",
                )
            )
    return failures


def describe_assumptions(assumptions: InitialAssumptions) -> list[str]:
    """A compact script of an assumption vector for the JSON report."""
    lines = [f"assumptions: {len(list(assumptions.all_formulas()))} formula(s)"]
    for principal, formula in assumptions.all_formulas():
        lines.append(f"  {principal}: {formula}")
    return lines
