"""Seeded random workload generation for the differential fuzzer.

Generation is layered on the E3 soundness generator
(:mod:`repro.soundness.generators`): every base system comes out of
:class:`~repro.model.builder.RunBuilder` with enforcement on, so it is
well-formed by construction — the fuzzer's *negative* test material is
produced afterwards by the fault injectors (:mod:`repro.fuzz.mutators`),
never by the generator itself.

Each fuzz iteration derives its own :class:`GeneratorConfig` from the
master seed, varying the shape knobs (principal count, run length,
environment activity) so that structurally different systems are
explored without sacrificing reproducibility: iteration *i* of seed *s*
is always the same workload.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass

from repro.model.system import Interpretation, System
from repro.soundness.generators import GeneratorConfig, generate_system
from repro.terms.atoms import Sort

#: The selectable oracle families (``fuzz --oracles``): WF fault
#: injection/classification, the evaluator differentials, the
#: compiled-vs-interpreted engine differential, the periodic
#: parallel-sweep comparison, engine-vs-semantics derivation replay,
#: adversarial proof mutation, interpretation fuzzing, the good-runs
#: construction invariants (Theorem 2/3 pipeline), and the
#: belief-vs-epistemic cross-backend differential (containment map).
ORACLE_FAMILIES: tuple[str, ...] = (
    "wf",
    "differential",
    "compiled",
    "parallel",
    "engine_replay",
    "proof_mutation",
    "interpretation",
    "goodruns_construction",
    "cross_backend",
)


@dataclass(frozen=True)
class FuzzConfig:
    """Knobs for one fuzzing campaign."""

    seed: int = 0
    iterations: int = 200
    #: Run the (expensive) parallel-sweep oracle every Nth iteration.
    parallel_every: int = 50
    #: Process-pool width used by the parallel-sweep oracle.
    parallel_workers: int = 2
    #: Instance cap per schema for the parallel-sweep oracle.
    parallel_instances: int = 8
    #: Points sampled per run for the evaluator differential oracles.
    points_per_run: int = 3
    #: Formulas sampled from the instantiation pool per iteration.
    formulas_per_iteration: int = 6
    #: Oracle families enabled for this campaign (see ORACLE_FAMILIES).
    oracles: tuple[str, ...] = ORACLE_FAMILIES
    #: True assumptions sampled per engine-replay workload.
    replay_assumptions: int = 6
    #: Engine resource bound for one replay closure (exceeding it skips
    #: the iteration's replay rather than failing the campaign).
    replay_max_facts: int = 4000
    #: Proof mutations injected per iteration that certifies a proof.
    proof_mutations_per_iteration: int = 2
    #: Assumption formulas sampled per good-runs construction workload.
    goodruns_assumptions: int = 4
    #: Candidate-vector cap for the brute-force optimality cross-check
    #: (systems whose search space exceeds it skip that sub-oracle).
    goodruns_optimality_cap: int = 4096
    #: Semantics backend the engine-replay workload audits against
    #: (the cross-backend oracle always compares ``belief`` vs.
    #: ``epistemic`` regardless).
    backend: str = "belief"


def iteration_rng(config: FuzzConfig, iteration: int) -> random.Random:
    """The iteration-local RNG: a pure function of (seed, iteration)."""
    return random.Random(f"{config.seed}:{iteration}")


def random_generator_config(rng: random.Random, iteration: int) -> GeneratorConfig:
    """A small, shape-varied system configuration for one iteration."""
    return GeneratorConfig(
        principals=rng.randint(2, 3),
        keys=rng.randint(2, 3),
        nonces=rng.randint(2, 3),
        keypairs=rng.randint(0, 1),
        runs=rng.randint(2, 3),
        steps_per_run=rng.randint(6, 14),
        past_steps=rng.randint(0, 3),
        env_activity=rng.choice((0.0, 0.2, 0.4)),
        seed=rng.randrange(2**31),
    )


def generate_base_system(config: FuzzConfig, iteration: int) -> tuple[System, random.Random]:
    """One well-formed base system plus the iteration's RNG.

    The RNG is returned *after* the system draw, so mutator and oracle
    choices downstream remain reproducible from (seed, iteration).
    """
    rng = iteration_rng(config, iteration)
    generator_config = random_generator_config(rng, iteration)
    return generate_system(generator_config), rng


def randomize_interpretation(rng: random.Random, system: System) -> System:
    """The system with a fresh seeded primitive-proposition interpretation.

    The E3 generator fixes each proposition's truth at generation time
    (run-level, constant within a run); this re-rolls it *per workload*
    with point-level granularity, so the Prim/A12 plumbing is stressed
    with interpretations the generator never produces.  The replacement
    predicate is built with :meth:`Interpretation.from_table`, so it
    stays plain picklable data and the parallel-sweep oracle keeps its
    process-pool path.
    """
    propositions = sorted(system.constants(Sort.PROPOSITION), key=str)
    if not propositions:
        return system
    table = {}
    for proposition in propositions:
        density = rng.choice((0.0, 0.25, 0.5, 1.0))
        table[proposition] = [
            (run.name, k)
            for run in system.runs
            for k in run.times
            if rng.random() < density
        ]
    return dataclasses.replace(
        system, interpretation=Interpretation.from_table(table)
    )


def shrink_generator_config(config: GeneratorConfig) -> list[GeneratorConfig]:
    """Candidate smaller configurations, most aggressive first.

    Used by the shrinker to re-generate structurally simpler base
    systems while keeping the same seed (and so, broadly, the same
    schedule shape).
    """
    candidates = []
    if config.runs > 1:
        candidates.append(dataclasses.replace(config, runs=1))
    if config.steps_per_run > 2:
        candidates.append(
            dataclasses.replace(config, steps_per_run=config.steps_per_run // 2)
        )
    if config.past_steps > 0:
        candidates.append(dataclasses.replace(config, past_steps=0))
    if config.principals > 2:
        candidates.append(dataclasses.replace(config, principals=2))
    if config.env_activity > 0:
        candidates.append(dataclasses.replace(config, env_activity=0.0))
    return candidates
