"""Logic-vs-semantics oracles: the derivation layer on the hook.

The original fuzzer only differentials the *model* layer (caches,
hide, ground paths, the parallel sweep); these three families close
the loop over the *derivation* layer of Sections 4 and 8:

* **Engine-vs-semantics replay** — sample assumptions that are *true*
  at a random point of a generated system, close them under the
  engine's rules, and re-evaluate every derived fact at that same
  point.  Each rule is backed by a valid implication, so a derived
  fact that evaluates false is a soundness counterexample (the
  pointwise reading of Theorem 1).
* **Adversarial proof mutation** — certify an engine derivation into a
  checked Hilbert proof, corrupt it with
  :mod:`repro.fuzz.proof_mutators`, and assert the proof checker's
  verdict matches the corruption's tag — rejecting with
  :class:`~repro.errors.ProofError` and nothing else.
* **Interpretation agreement** — with per-workload randomized Prim
  interpretations (:func:`repro.fuzz.generate.randomize_interpretation`),
  the evaluator's ``Prim`` verdicts must agree with the interpretation
  predicate directly, on non-interned clones, and after a pickle
  round-trip (the contract the parallel sweep workers rely on).

The replay rule set excludes the paper-faithful ``A11``
(:class:`~repro.logic.rules.SeesCipherIntrospection`): as documented in
EXPERIMENTS.md, A11 as printed is *falsifiable* under collapse-hide
when the seen ciphertext nests an unreadable one, so replaying it
against the semantics would "find" the known caveat forever.  The
transparency-guarded ``A11+`` stays in.
"""

from __future__ import annotations

import pickle
import random
from typing import Sequence

from repro.errors import EngineError, ProofError, SemanticsError
from repro.logic.engine import Derivation, Engine, MessagePool, Rule
from repro.logic.facts import normalize_to_facts
from repro.logic.proof import Proof
from repro.logic.rules import standard_rules
from repro.model.runs import Run
from repro.model.system import System
from repro.semantics.backend import DEFAULT_BACKEND, get_backend
from repro.semantics.evaluator import Evaluator
from repro.soundness.audit import replay_derivation
from repro.terms.atoms import Sort
from repro.terms.base import Message
from repro.terms.formulas import (
    Believes,
    Formula,
    Fresh,
    Has,
    Implies,
    Prim,
    Said,
    Says,
    Sees,
    SharedKey,
    SharedSecret,
)
from repro.terms.ops import walk

from repro.fuzz.oracles import OracleFailure, deintern
from repro.fuzz.proof_mutators import ACCEPT, CONSERVATIVE, REJECT, ProofMutation

#: Rules excluded from the replay closure; see the module docstring.
REPLAY_EXCLUDED_RULES: frozenset[str] = frozenset({"A11"})


def replay_rules() -> tuple[Rule, ...]:
    """The standard rule set minus the known-falsifiable ``A11``."""
    return tuple(
        rule
        for rule in standard_rules()
        if rule.name not in REPLAY_EXCLUDED_RULES
    )


# ---------------------------------------------------------------------------
# Engine-vs-semantics replay
# ---------------------------------------------------------------------------


def _sorted(items) -> list:
    return sorted(items, key=str)


def sample_assumptions(
    rng: random.Random,
    system: System,
    evaluator: Evaluator,
    run: Run,
    k: int,
    count: int,
) -> tuple[Formula, ...]:
    """Assumptions that are *true* at ``(run, k)``, engine-digestible.

    Candidates are read off the point's actual state — sees over
    received traffic, has over held keys, said/says over performed
    sends, freshness/shared-key/shared-secret/Prim over the vocabulary
    — then filtered by the evaluator, so the replay precondition
    ("assumptions hold at the point") is true by construction.  A
    belief wrap and an implication are layered on top when they stay
    true, giving the lifted rules and modus ponens material to chew on.
    Everything is ground: derived facts then stay evaluable.
    """
    principals = [
        principal
        for principal in system.principals()
        if run.is_system_principal(principal)
    ]
    candidates: list[Formula] = []
    for principal in principals:
        for message in _sorted(run.received_messages(principal, k))[:4]:
            candidates.append(Sees(principal, message))
        for key in _sorted(run.keyset(principal, k))[:3]:
            candidates.append(Has(principal, key))
        sent = _sorted({send.message for send in run.sends(principal, k)})
        for message in sent[:2]:
            candidates.append(Said(principal, message))
            candidates.append(Says(principal, message))
    keys = _sorted(system.constants(Sort.KEY))
    nonces = _sorted(system.constants(Sort.NONCE))
    for nonce in nonces[:2]:
        candidates.append(Fresh(nonce))
    if len(principals) >= 2:
        for key in keys[:2]:
            left, right = rng.sample(principals, 2)
            candidates.append(SharedKey(left, key, right))
        for nonce in nonces[:1]:
            left, right = rng.sample(principals, 2)
            candidates.append(SharedSecret(left, nonce, right))
    for proposition in _sorted(system.constants(Sort.PROPOSITION))[:2]:
        candidates.append(Prim(proposition))

    rng.shuffle(candidates)
    true_pool: list[Formula] = []
    for formula in candidates:
        if len(true_pool) >= count + 2:
            break
        try:
            if evaluator.evaluate(formula, run, k):
                true_pool.append(formula)
        except SemanticsError:
            continue
    chosen = true_pool[:count]
    spares = true_pool[count:]

    if chosen and principals:
        for formula in list(chosen)[:2]:
            wrapped = Believes(rng.choice(principals), formula)
            if evaluator.evaluate(wrapped, run, k):
                chosen.append(wrapped)
    if chosen:
        # True because its consequent is: material for LiftedModusPonens.
        consequent = spares[0] if spares else chosen[0]
        chosen.append(Implies(rng.choice(chosen), consequent))
    return tuple(dict.fromkeys(chosen))


def _seed_messages(assumptions: Sequence[Formula]) -> tuple[Message, ...]:
    """Every message-sorted node mentioned by the assumptions."""
    seeds: dict[Message, None] = {}
    for formula in assumptions:
        for node in walk(formula):
            if isinstance(node, Message) and not isinstance(node, Formula):
                seeds[node] = None
    return tuple(seeds)


def check_engine_replay(
    system: System,
    run: Run,
    k: int,
    assumptions: Sequence[Formula],
    rules: Sequence[Rule] | None = None,
    max_facts: int = 4000,
    evaluator: "Evaluator | None" = None,
    backend: str = DEFAULT_BACKEND,
) -> tuple[list[OracleFailure], Derivation | None]:
    """Close the assumptions, replay every derived fact at ``(run, k)``.

    Returns the failures plus the derivation (for downstream proof
    mutation).  A closure that blows the ``max_facts`` resource bound
    is skipped — that is a capacity verdict, not a soundness one.
    Replay defaults to ``backend``'s compiled engine (the adopted hot
    path); pass an evaluator explicitly to replay against it instead.
    """
    if not assumptions:
        return [], None
    active_rules = replay_rules() if rules is None else tuple(rules)
    active_evaluator = (
        evaluator if evaluator is not None
        else get_backend(backend).compile(system)
    )
    engine = Engine(active_rules, max_facts=max_facts, max_prefix=3)
    pool = MessagePool(_seed_messages(assumptions))
    try:
        derivation = engine.close(assumptions, pool)
    except EngineError:
        return [], None
    failures = []
    for entry in replay_derivation(derivation, active_evaluator, run, k):
        if entry.consistent:
            continue
        facts = normalize_to_facts(entry.formula)
        origin = derivation.origins.get(facts[0]) if facts else None
        rule_name = origin[0] if origin else "?"
        failures.append(
            OracleFailure(
                "engine_replay",
                f"rule {rule_name} derived a fact that is false in the "
                "model",
                run_name=run.name,
                formula=str(entry.formula),
                time=k,
            )
        )
    return failures, derivation


# ---------------------------------------------------------------------------
# Proof mutation
# ---------------------------------------------------------------------------


def check_proof_mutation(
    mutation: ProofMutation, original: Proof
) -> OracleFailure | None:
    """The checker's verdict on a mutant must match its expectation.

    Any non-:class:`ProofError` exception out of ``check()`` is a
    failure in its own right — the mutation oracle can only trust
    "rejected" verdicts if malformed proofs are *diagnosed*, never
    crashed on (the exception-discipline contract).
    """
    label = f"{mutation.name} ({mutation.detail})"
    try:
        mutation.proof.check()
    except ProofError:
        rejected = True
    except Exception as error:
        return OracleFailure(
            "proof_mutation",
            f"{label}: checker crashed with "
            f"{type(error).__name__}: {error}",
        )
    else:
        rejected = False
    if mutation.expectation == REJECT and not rejected:
        return OracleFailure(
            "proof_mutation", f"{label}: forged proof was accepted"
        )
    if mutation.expectation == ACCEPT and rejected:
        return OracleFailure(
            "proof_mutation", f"{label}: benign mutant was rejected"
        )
    if mutation.expectation == CONSERVATIVE and not rejected:
        same_conclusion = mutation.proof.conclusion == original.conclusion
        premise_subset = set(mutation.proof.premises) <= set(
            original.premises
        )
        if not (same_conclusion and premise_subset):
            return OracleFailure(
                "proof_mutation",
                f"{label}: accepted mutant proves something new",
            )
    return None


# ---------------------------------------------------------------------------
# Interpretation agreement
# ---------------------------------------------------------------------------


def check_interpretation_agreement(
    system: System, points: Sequence[tuple[Run, int]]
) -> list[OracleFailure]:
    """Evaluator ``Prim`` verdicts must agree with the interpretation.

    Three legs per (proposition, point): the evaluator against the
    predicate called directly, a non-interned ``Prim`` clone against
    the same, and the predicate after a pickle round-trip (what the
    parallel sweep actually ships to worker processes).
    """
    failures = []
    evaluator = Evaluator(system)
    try:
        thawed = pickle.loads(pickle.dumps(system.interpretation))
    except Exception:
        thawed = None  # non-picklable custom predicate: skip that leg
    for proposition in _sorted(system.constants(Sort.PROPOSITION)):
        formula = Prim(proposition)
        clone = deintern(formula)
        for run, k in points:
            direct = system.interpretation.holds(proposition, run, k)
            if evaluator.evaluate(formula, run, k) != direct:
                failures.append(
                    OracleFailure(
                        "prim_agreement",
                        f"evaluator Prim verdict diverged from the "
                        f"interpretation (direct={direct})",
                        run_name=run.name, formula=str(formula), time=k,
                    )
                )
            if evaluator.evaluate(clone, run, k) != direct:
                failures.append(
                    OracleFailure(
                        "prim_agreement",
                        "non-interned Prim clone diverged from the "
                        "interpretation",
                        run_name=run.name, formula=str(formula), time=k,
                    )
                )
            if thawed is not None and thawed.holds(proposition, run, k) != direct:
                failures.append(
                    OracleFailure(
                        "prim_pickle",
                        "interpretation changed verdict after a pickle "
                        "round-trip",
                        run_name=run.name, formula=str(formula), time=k,
                    )
                )
    return failures
