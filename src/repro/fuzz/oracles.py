"""The fuzzer's invariant oracles.

Four families of checks, each independent of the machinery it audits:

* **WF classification** — :func:`repro.model.wellformed.violation_classes`
  must flag exactly (or at least, for non-exact mutations) the condition
  classes a fault injector tagged, and nothing on clean runs.
* **Cache/interning differentials** — evaluation results must be
  identical with warm caches, under a cold ephemeral engine context,
  and on structurally-equal *non-interned* clones of the formulas
  (exercising the structural ``__hash__``/``__eq__`` fallback paths).
* **Hide differentials** — ``pattern_hide`` only affects belief:
  belief-free formulas must evaluate identically under both variants,
  and pattern hiding refines indistinguishability, so a top-level
  belief that holds under collapse-hide must also hold under
  pattern-hide.
* **Path differentials** — the ground-formula fast path must agree with
  the substitution path, and ``sweep_system(workers=N)`` must render
  byte-identically to the sequential sweep.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Sequence

from repro import context
from repro.model.runs import Run
from repro.model.system import System
from repro.model.wellformed import violation_classes
from repro.semantics.evaluator import Evaluator
from repro.terms.atoms import Key, Parameter, Sort
from repro.terms.base import Message
from repro.terms.formulas import Believes, Formula
from repro.terms.intern import _field_names, intern_key
from repro.terms.ops import (
    constants_of_sort,
    has_belief_under_negation,
    is_ground,
    transform,
    walk,
)

from repro.fuzz.mutators import Mutation


@dataclass(frozen=True)
class OracleFailure:
    """One surviving invariant violation."""

    oracle: str
    description: str
    run_name: str | None = None
    formula: str | None = None
    time: int | None = None

    def to_json(self) -> dict:
        out = {"oracle": self.oracle, "description": self.description}
        if self.run_name is not None:
            out["run"] = self.run_name
        if self.formula is not None:
            out["formula"] = self.formula
        if self.time is not None:
            out["time"] = self.time
        return out


# ---------------------------------------------------------------------------
# WF classification oracles
# ---------------------------------------------------------------------------


def classification_failure(
    expected: frozenset[str], exact: bool, run: Run
) -> str | None:
    """Why the WF checker's verdict disagrees with the tag, if it does."""
    detected = violation_classes(run)
    if not expected:
        if detected:
            return f"benign mutation flagged as {sorted(detected)}"
        return None
    if exact and detected != expected:
        return (
            f"expected exactly {sorted(expected)}, "
            f"checker flagged {sorted(detected)}"
        )
    if not expected <= detected:
        missed = sorted(expected - detected)
        return f"injected {missed} not detected (flagged {sorted(detected)})"
    return None


def check_mutation(mutation: Mutation) -> OracleFailure | None:
    """The central oracle: the checker sees what was injected."""
    why = classification_failure(mutation.expected, mutation.exact, mutation.run)
    if why is None:
        return None
    return OracleFailure(
        "wf_classification",
        f"{mutation.name} ({mutation.detail}): {why}",
        run_name=mutation.run.name,
    )


def check_clean_system(system: System) -> list[OracleFailure]:
    """Generated base systems must be well-formed (builder guarantee)."""
    failures = []
    for run in system.runs:
        detected = violation_classes(run)
        if detected:
            failures.append(
                OracleFailure(
                    "generator_wellformed",
                    f"generated run flagged as {sorted(detected)}",
                    run_name=run.name,
                )
            )
    return failures


# ---------------------------------------------------------------------------
# Formula/point sampling
# ---------------------------------------------------------------------------


def sample_formulas(
    rng: random.Random, system: System, count: int
) -> tuple[Formula, ...]:
    """Ground formulas over the system's traffic, belief-wrapped ones
    included so the hide machinery is actually on the hook."""
    from repro.soundness.sweep import pool_from_system

    pool = pool_from_system(system)
    formulas = [f for f in pool.formulas if is_ground(f)]
    principals = system.principals()
    if principals:
        for formula in list(formulas)[:2]:
            if not _mentions_belief(formula):
                formulas.append(Believes(rng.choice(principals), formula))
        # One nested belief per sample: P believes Q believes φ keeps the
        # deep-hide machinery (and the widened monotonicity oracle) on
        # the hook, not just the single-level collapse.
        bodies = [f for f in formulas if not _mentions_belief(f)]
        if bodies:
            body = rng.choice(bodies)
            outer, inner = (
                rng.choice(principals), rng.choice(principals)
            )
            formulas.append(Believes(outer, Believes(inner, body)))
    rng.shuffle(formulas)
    return tuple(formulas[:count])


def sample_points(
    rng: random.Random, system: System, per_run: int
) -> tuple[tuple[Run, int], ...]:
    points = []
    for run in system.runs:
        times = list(run.times)
        for k in sorted(rng.sample(times, min(per_run, len(times)))):
            points.append((run, k))
    return tuple(points)


def _mentions_belief(formula: Formula) -> bool:
    return any(isinstance(node, Believes) for node in walk(formula))


def sample_goodrun_vector(rng: random.Random, system: System):
    """A seeded, possibly-restricting good-run vector.

    Unrestricted principals are skipped outright; restricted ones get a
    strict subset of the run names — empty subsets included, because an
    empty possibility set is exactly where the paper's belief clause
    goes vacuous and the backends may legitimately diverge (the case
    the cross-backend oracle exists to map).
    """
    from repro.semantics.goodvectors import GoodRunVector

    names = sorted(run.name for run in system.runs)
    assignment = {}
    for principal in system.principals():
        if rng.random() < 0.4:
            continue
        size = rng.randint(0, max(0, len(names) - 1))
        assignment[principal] = frozenset(rng.sample(names, size))
    return GoodRunVector.of(assignment)


# ---------------------------------------------------------------------------
# Interning / cache differentials
# ---------------------------------------------------------------------------


def deintern(term: Message) -> Message:
    """A structurally-equal clone built *behind the constructors' back*.

    The clone (and every subterm of it) bypasses the intern table and
    carries no precomputed hash, so using it forces the structural
    ``__hash__``/``__eq__`` fallbacks — semantics must not depend on
    canonical instances.
    """
    cls = type(term)
    values = intern_key(term)[1:]
    rebuilt = []
    for value in values:
        if isinstance(value, Message):
            rebuilt.append(deintern(value))
        elif isinstance(value, tuple):
            rebuilt.append(
                tuple(
                    deintern(item) if isinstance(item, Message) else item
                    for item in value
                )
            )
        else:
            rebuilt.append(value)
    clone = object.__new__(cls)
    for name, value in zip(_field_names(cls), rebuilt):
        object.__setattr__(clone, name, value)
    return clone


def check_cache_differential(
    system: System,
    formulas: Sequence[Formula],
    points: Sequence[tuple[Run, int]],
) -> list[OracleFailure]:
    """Warm caches vs. cold caches vs. non-interned clones.

    The cold phase runs under an ephemeral :class:`EngineContext`: its
    intern table, semantic-kernel memos, and evaluator registry are all
    born empty, and the warm context's tables are never touched — terms
    interned before this check stay the canonical instances their
    structural keys resolve to.  (This replaces the old snapshot/restore
    dance around the shared global intern table.)
    """
    failures = []
    warm = Evaluator(system)
    expected = {
        (formula, run.name, k): warm.evaluate(formula, run, k)
        for formula in formulas
        for run, k in points
    }

    with context.scoped("fuzz-cold-cache"):
        cold = Evaluator(system)
        for formula in formulas:
            for run, k in points:
                value = cold.evaluate(formula, run, k)
                if value != expected[(formula, run.name, k)]:
                    failures.append(
                        OracleFailure(
                            "cache_differential",
                            f"cold-context evaluation flipped to {value}",
                            run_name=run.name, formula=str(formula), time=k,
                        )
                    )

    uninterned = Evaluator(system)
    for formula in formulas:
        clone = deintern(formula)
        for run, k in points:
            value = uninterned.evaluate(clone, run, k)
            if value != expected[(formula, run.name, k)]:
                failures.append(
                    OracleFailure(
                        "intern_differential",
                        f"non-interned clone evaluated to {value}",
                        run_name=run.name, formula=str(formula), time=k,
                    )
                )
    return failures


# ---------------------------------------------------------------------------
# Hide differentials
# ---------------------------------------------------------------------------


def check_hide_differential(
    system: System,
    formulas: Sequence[Formula],
    points: Sequence[tuple[Run, int]],
) -> list[OracleFailure]:
    """``pattern_hide`` must not move belief-free truth, and may only
    strengthen belief-positive formulas (refinement of
    indistinguishability).

    The monotone class is every formula whose beliefs sit in positive
    positions only (the I1 test, ``has_belief_under_negation``), nested
    beliefs included: pattern hiding shrinks each possibility set, which
    can only turn beliefs true, and by induction a positive context
    propagates that direction outward.  Formulas with beliefs under
    negation can legitimately move either way and are skipped.
    """
    failures = []
    collapse = Evaluator(system, pattern_hide=False)
    pattern = Evaluator(system, pattern_hide=True)
    for formula in formulas:
        belief_free = not _mentions_belief(formula)
        monotone = not belief_free and not has_belief_under_negation(formula)
        if not (belief_free or monotone):
            continue
        for run, k in points:
            a = collapse.evaluate(formula, run, k)
            b = pattern.evaluate(formula, run, k)
            if belief_free and a != b:
                failures.append(
                    OracleFailure(
                        "hide_differential",
                        f"belief-free formula moved: collapse={a}, pattern={b}",
                        run_name=run.name, formula=str(formula), time=k,
                    )
                )
            elif monotone and a and not b:
                failures.append(
                    OracleFailure(
                        "hide_monotonicity",
                        "belief held under collapse-hide but not under "
                        "the finer pattern-hide",
                        run_name=run.name, formula=str(formula), time=k,
                    )
                )
    return failures


# ---------------------------------------------------------------------------
# Path differentials
# ---------------------------------------------------------------------------

#: The parameter the ground-vs-substitution oracle threads through runs.
_PROBE = Parameter("FZprobe", Sort.KEY)


def check_ground_path_differential(
    rng: random.Random,
    system: System,
    formulas: Sequence[Formula],
    points: Sequence[tuple[Run, int]],
) -> list[OracleFailure]:
    """Ground fast path vs. the Section 8 substitution path.

    A ground formula mentioning a key constant K is abstracted to a
    parameterized twin (K replaced by a parameter the runs map back to
    K); both must evaluate identically at every point.
    """
    failures = []
    candidates = [
        formula
        for formula in formulas
        if is_ground(formula) and constants_of_sort(formula, Sort.KEY)
    ]
    if not candidates:
        return failures
    formula = rng.choice(candidates)
    key = sorted(constants_of_sort(formula, Sort.KEY), key=str)[0]
    assert isinstance(key, Key)
    parameterized = transform(
        formula, lambda node: _PROBE if node == key else None
    )
    runs = tuple(
        replace(
            run,
            params=tuple(
                sorted(
                    list(run.params) + [(_PROBE, key)],
                    key=lambda kv: kv[0].name,
                )
            ),
        )
        for run in system.runs
    )
    parameterized_system = System(runs, system.interpretation, system.vocabulary)
    evaluator = Evaluator(parameterized_system)
    by_name = {run.name: run for run in runs}
    for run, k in points:
        twin = by_name[run.name]
        ground_value = evaluator.evaluate(formula, twin, k)
        substituted_value = evaluator.evaluate(parameterized, twin, k)
        if ground_value != substituted_value:
            failures.append(
                OracleFailure(
                    "ground_path_differential",
                    f"ground path said {ground_value}, substitution path "
                    f"said {substituted_value} (probe {key})",
                    run_name=run.name, formula=str(formula), time=k,
                )
            )
    return failures


def check_compiled_differential(
    system: System,
    formulas: Sequence[Formula],
    points: Sequence[tuple[Run, int]],
    goodruns=None,
    pattern_hide: bool = False,
) -> list[OracleFailure]:
    """Compiled engine vs. the interpreter: byte-identical verdicts.

    Every (formula, point) pair is evaluated by both engines — the
    recursive :class:`Evaluator` and the bitset
    :class:`~repro.semantics.compiler.CompiledSystem` — and both the
    truth verdict *and* the error outcome must match exactly.  This is
    the safety net under the compiled hot path: the sweep, the audit,
    and the engine-replay oracle all route through compilation, so any
    divergence here is a soundness bug, not a performance one.
    """
    from repro.errors import SemanticsError
    from repro.semantics.compiler import compiled_for

    failures = []
    interpreter = Evaluator(system, goodruns, pattern_hide=pattern_hide)
    compiled = compiled_for(system, goodruns, pattern_hide=pattern_hide)
    for formula in formulas:
        for run, k in points:
            try:
                expected = (interpreter.evaluate(formula, run, k), None)
            except SemanticsError as error:
                expected = (None, str(error))
            try:
                actual = (compiled.evaluate(formula, run, k), None)
            except SemanticsError as error:
                actual = (None, str(error))
            if expected != actual:
                failures.append(
                    OracleFailure(
                        "compiled_vs_interpreted",
                        f"interpreter said {expected}, compiled engine "
                        f"said {actual}",
                        run_name=run.name, formula=str(formula), time=k,
                    )
                )
    return failures


def check_cross_backend(
    system: System,
    formulas: Sequence[Formula],
    points: Sequence[tuple[Run, int]],
    goodruns=None,
    pattern_hide: bool = False,
    belief_backend: str = "belief",
    epistemic_backend: str = "epistemic",
) -> list[OracleFailure]:
    """Belief vs. epistemic backends, mapped against the containment.

    The two built-in backends share every clause except belief, and the
    guarded defensible-knowledge reading is pointwise *stronger* there
    (see :mod:`repro.semantics.epistemic`): at every point,
    epistemic-true implies belief-true for the ``Believes`` clause, and
    the implication lifts to every formula whose beliefs sit in
    positive positions only.  The oracle therefore classifies each
    divergence:

    * error outcomes must match exactly (shared machinery);
    * belief-free formulas must agree exactly (shared clauses);
    * on belief-positive formulas, *epistemic-true / belief-false* is a
      wrong-direction disagreement — a counterexample to the theorem;
    * *belief-true / epistemic-false* is the expected direction (the
      paper's vacuous beliefs that defensible knowledge refuses) and is
      left alone, as are formulas with beliefs under negation.
    """
    from repro.errors import SemanticsError
    from repro.semantics.backend import get_backend

    failures = []
    belief = get_backend(belief_backend).compile(
        system, goodruns, pattern_hide=pattern_hide
    )
    epistemic = get_backend(epistemic_backend).compile(
        system, goodruns, pattern_hide=pattern_hide
    )
    for formula in formulas:
        belief_free = not _mentions_belief(formula)
        monotone = not belief_free and not has_belief_under_negation(formula)
        for run, k in points:
            try:
                b = (belief.evaluate(formula, run, k), None)
            except SemanticsError as error:
                b = (None, str(error))
            try:
                e = (epistemic.evaluate(formula, run, k), None)
            except SemanticsError as error:
                e = (None, str(error))
            if b == e:
                continue
            if b[1] is not None or e[1] is not None:
                failures.append(
                    OracleFailure(
                        "cross_backend",
                        f"error outcomes diverged: belief={b}, epistemic={e}",
                        run_name=run.name, formula=str(formula), time=k,
                    )
                )
            elif belief_free:
                failures.append(
                    OracleFailure(
                        "cross_backend",
                        f"belief-free formula diverged: belief={b[0]}, "
                        f"epistemic={e[0]} (all non-belief clauses are shared)",
                        run_name=run.name, formula=str(formula), time=k,
                    )
                )
            elif monotone and e[0] and not b[0]:
                failures.append(
                    OracleFailure(
                        "cross_backend",
                        "wrong-direction disagreement: epistemic "
                        "(defensible knowledge) held where belief failed, "
                        "violating the containment theorem",
                        run_name=run.name, formula=str(formula), time=k,
                    )
                )
            # belief-true/epistemic-false, and either-way movement under
            # negative belief positions, are theorem-consistent.
    return failures


def sweep_fingerprint(report) -> tuple:
    """Everything observable about a sweep report, as comparable data."""
    return (
        report.render(),
        {
            name: (
                r.instances,
                r.points_checked,
                [str(v) for v in r.violations],
            )
            for name, r in report.per_schema.items()
        },
    )


def check_parallel_sweep(
    system: System, workers: int, instances: int
) -> OracleFailure | None:
    """``sweep_system(workers=N)`` must be byte-identical to sequential."""
    from repro.soundness.sweep import sweep_system

    sequential = sweep_system(system, max_instances_per_schema=instances)
    parallel = sweep_system(
        system, max_instances_per_schema=instances, workers=workers
    )
    if sweep_fingerprint(sequential) != sweep_fingerprint(parallel):
        return OracleFailure(
            "parallel_sweep_differential",
            f"workers={workers} sweep diverged from the sequential render",
        )
    return None
