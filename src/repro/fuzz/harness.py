"""The fuzzing campaign driver and its JSON report.

One iteration = one seeded workload: generate a well-formed base
system, randomize its Prim interpretation, run the differential
evaluator oracles over sampled formulas and points, inject one fault
and check the WF oracle classifies it, close a true assumption set
under the derivation engine and replay every derived fact against the
semantics, certify a derivation into a Hilbert proof and attack the
proof checker with surgical mutations, and (periodically) replay the
soundness sweep in parallel and compare renders.  Failures are
greedily shrunk before being recorded, so the report carries minimal
reproductions, not raw random noise.

Oracle families can be selected per campaign (``FuzzConfig.oracles``,
``fuzz --oracles``); everything is a pure function of
``FuzzConfig.seed``: re-running with the same seed, iteration count,
and family selection reproduces every workload, mutation choice, and
oracle verdict bit-for-bit.
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import dataclass, field, replace as dc_replace
from typing import Sequence

from repro import context, perf
from repro.errors import ProofError
from repro.logic.certify import CertificationError, certify
from repro.logic.engine import Derivation, Rule
from repro.logic.proof import Proof
from repro.model.system import System
from repro.obs import journal, metrics, run_metadata, spans
from repro.obs.spans import summarize
from repro.obs.trace import render_why, trace_evaluation
from repro.semantics.backend import get_backend

from repro.fuzz.generate import (
    ORACLE_FAMILIES,
    FuzzConfig,
    generate_base_system,
    randomize_interpretation,
)
from repro.fuzz.goodruns_oracles import (
    check_goodruns_construction,
    describe_assumptions,
    sample_assumption_vector,
)
from repro.fuzz.logic_oracles import (
    check_engine_replay,
    check_interpretation_agreement,
    check_proof_mutation,
    sample_assumptions,
)
from repro.fuzz.mutators import MUTATORS, Mutation, apply_random_mutator
from repro.fuzz.oracles import (
    OracleFailure,
    check_cache_differential,
    check_clean_system,
    check_compiled_differential,
    check_cross_backend,
    check_ground_path_differential,
    check_hide_differential,
    check_mutation,
    check_parallel_sweep,
    classification_failure,
    sample_formulas,
    sample_goodrun_vector,
    sample_points,
)
from repro.fuzz.proof_mutators import (
    PROOF_MUTATORS,
    ProofMutation,
    apply_random_proof_mutator,
)
from repro.fuzz.shrink import (
    describe_proof,
    describe_run,
    shrink_assumption_vector,
    shrink_assumptions,
    shrink_proof,
    shrink_run,
)


#: How many trailing journal events a counterexample carries (the
#: "flight recorder" tail attached next to the why-false trace).
JOURNAL_TAIL = 20


@dataclass
class MutatorStats:
    applied: int = 0
    detected: int = 0
    failed: int = 0


@dataclass
class Counterexample:
    """A shrunk failing artifact, ready for the JSON report."""

    iteration: int
    failure: OracleFailure
    mutator: str | None = None
    expected: list[str] = field(default_factory=list)
    script: list[str] = field(default_factory=list)
    #: Rendered "why" proof-tree of the violated instance, when the
    #: failure names a (formula, run, time) that can be re-evaluated.
    trace: list[str] = field(default_factory=list)
    #: The iteration's correlation ID: the same value stamped on its
    #: journal events and span attributes, so a counterexample selects
    #: its own telemetry out of the campaign's merged stream.
    corr_id: str | None = None
    #: The flight-recorder tail of the failing iteration (last-N
    #: journal events: compilations, fallbacks, evictions, stage
    #: skips, oracle verdicts) — what happened just before it failed.
    journal: list[dict] = field(default_factory=list)

    def to_json(self) -> dict:
        return {
            "iteration": self.iteration,
            "mutator": self.mutator,
            "expected": self.expected,
            "failure": self.failure.to_json(),
            "script": self.script,
            "trace": self.trace,
            "corr_id": self.corr_id,
            "journal": [dict(event) for event in self.journal],
        }


@dataclass
class FuzzReport:
    """Aggregated campaign outcome."""

    seed: int
    iterations: int = 0
    mutations: dict[str, MutatorStats] = field(default_factory=dict)
    #: Per-proof-mutator tallies (the adversarial proof-mutation family).
    proof_mutations: dict[str, MutatorStats] = field(default_factory=dict)
    oracle_checks: dict[str, int] = field(default_factory=dict)
    counterexamples: list[Counterexample] = field(default_factory=list)
    elapsed_s: float = 0.0
    #: Environment fingerprint (:func:`repro.obs.run_metadata`).
    meta: dict = field(default_factory=dict)
    #: Per-phase wall-clock summary (:func:`repro.obs.spans.summarize`).
    spans: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.counterexamples

    def count_check(self, oracle: str, n: int = 1) -> None:
        self.oracle_checks[oracle] = self.oracle_checks.get(oracle, 0) + n

    def mutator_stats(self, name: str) -> MutatorStats:
        return self.mutations.setdefault(name, MutatorStats())

    def proof_mutator_stats(self, name: str) -> MutatorStats:
        return self.proof_mutations.setdefault(name, MutatorStats())

    def to_json(self) -> dict:
        return {
            "seed": self.seed,
            "iterations": self.iterations,
            "ok": self.ok,
            "elapsed_s": round(self.elapsed_s, 3),
            "mutations": {
                name: {
                    "applied": stats.applied,
                    "detected": stats.detected,
                    "failed": stats.failed,
                }
                for name, stats in sorted(self.mutations.items())
            },
            "proof_mutations": {
                name: {
                    "applied": stats.applied,
                    "detected": stats.detected,
                    "failed": stats.failed,
                }
                for name, stats in sorted(self.proof_mutations.items())
            },
            "oracle_checks": dict(sorted(self.oracle_checks.items())),
            "counterexamples": [c.to_json() for c in self.counterexamples],
            "meta": dict(self.meta),
            "spans": dict(self.spans),
        }

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def render(self) -> str:
        lines = [
            f"fuzz: seed={self.seed} iterations={self.iterations} "
            f"elapsed={self.elapsed_s:.1f}s "
            f"{'OK' if self.ok else 'FAILURES: ' + str(len(self.counterexamples))}"
        ]
        header = f"  {'mutator':<22} {'applied':>8} {'detected':>9} {'failed':>7}"
        lines.append(header)
        lines.append("  " + "-" * (len(header) - 2))
        for name in MUTATORS:
            stats = self.mutations.get(name, MutatorStats())
            lines.append(
                f"  {name:<22} {stats.applied:>8} {stats.detected:>9} "
                f"{stats.failed:>7}"
            )
        if self.proof_mutations:
            lines.append(f"  {'proof mutator':<22} "
                         f"{'applied':>8} {'detected':>9} {'failed':>7}")
            lines.append("  " + "-" * (len(header) - 2))
            for name in sorted(PROOF_MUTATORS):
                stats = self.proof_mutations.get(name, MutatorStats())
                lines.append(
                    f"  {name:<22} {stats.applied:>8} {stats.detected:>9} "
                    f"{stats.failed:>7}"
                )
        lines.append(
            "  oracle checks: "
            + ", ".join(
                f"{name}={n}" for name, n in sorted(self.oracle_checks.items())
            )
        )
        for example in self.counterexamples[:5]:
            lines.append(f"  ! {example.failure.oracle}: "
                         f"{example.failure.description}")
        return "\n".join(lines)


def _shrunk_counterexample(
    iteration: int, mutation: Mutation, failure: OracleFailure
) -> Counterexample:
    """Minimize a WF-classification failure before recording it."""
    expected, exact = mutation.expected, mutation.exact

    def still_fails(candidate) -> bool:
        return (
            classification_failure(expected, exact, candidate) is not None
        )

    minimal = shrink_run(mutation.run, still_fails)
    return Counterexample(
        iteration=iteration,
        failure=failure,
        mutator=mutation.name,
        expected=sorted(expected),
        script=describe_run(minimal),
    )


def _failure_trace(system: System, failure: OracleFailure) -> list[str]:
    """Best-effort "why" proof-tree for a differential-oracle failure.

    The failure records the violated instance as a string; when it
    round-trips through the parser against the system's vocabulary, a
    fresh traced evaluation explains the verdict the oracle objected
    to.  Anything unparseable (or un-evaluable) yields no trace rather
    than masking the original failure.
    """
    if (
        failure.formula is None
        or failure.run_name is None
        or failure.time is None
    ):
        return []
    try:
        from repro.terms.parser import parse_formula

        formula = parse_formula(failure.formula, system.vocabulary)
        run = system.run(failure.run_name)
        _verdict, root = trace_evaluation(system, formula, run, failure.time)
        return render_why(root).splitlines()
    except Exception:  # pragma: no cover - diagnostics must not throw
        return []


def _system_with(system: System, run) -> System:
    """The system with one run replaced by its mutated twin (same name)."""
    runs = tuple(
        run if original.name == run.name else original
        for original in system.runs
    )
    return dc_replace(system, runs=runs)


def _shrunk_replay_counterexample(
    iteration: int,
    failure: OracleFailure,
    system: System,
    run,
    k: int,
    assumptions,
    rules,
    max_facts: int,
) -> Counterexample:
    """Minimize a replay failure to the assumptions that still derive
    a false fact, and attach the engine's own explanation of it."""

    def still_fails(candidate) -> bool:
        failures, _derivation = check_engine_replay(
            system, run, k, candidate, rules=rules, max_facts=max_facts
        )
        return bool(failures)

    minimal = shrink_assumptions(assumptions, still_fails)
    script = [f"point: ({run.name}, {k})"]
    script += [f"assume: {formula}" for formula in minimal]
    shrunk_failures, derivation = check_engine_replay(
        system, run, k, minimal, rules=rules, max_facts=max_facts
    )
    witness = shrunk_failures[0] if shrunk_failures else failure
    if derivation is not None and witness.formula is not None:
        try:
            from repro.terms.parser import parse_formula

            bad = parse_formula(witness.formula, system.vocabulary)
            script += derivation.explain(bad).splitlines()
        except Exception:  # pragma: no cover - diagnostics must not throw
            pass
    return Counterexample(
        iteration=iteration,
        failure=witness,
        script=script,
        trace=_failure_trace(system, witness),
    )


def _shrunk_proof_counterexample(
    iteration: int,
    mutation: ProofMutation,
    original: Proof,
    failure: OracleFailure,
) -> Counterexample:
    """Minimize the mutant proof while its oracle verdict persists."""

    def still_fails(candidate: Proof) -> bool:
        twin = ProofMutation(
            mutation.name, candidate, mutation.expectation, mutation.detail
        )
        return check_proof_mutation(twin, original) is not None

    minimal = shrink_proof(mutation.proof, still_fails)
    return Counterexample(
        iteration=iteration,
        failure=failure,
        mutator=mutation.name,
        expected=[mutation.expectation],
        script=describe_proof(minimal),
    )


def _goodruns_trace(
    system: System, assumptions, failure: OracleFailure
) -> list[str]:
    """A why-false proof tree for a support failure, relative to the
    vector constructed from the (shrunk) assumptions."""
    if (
        failure.formula is None
        or failure.run_name is None
        or failure.time is None
    ):
        return []
    try:
        from repro.goodruns.construction import construct_good_runs
        from repro.terms.parser import parse_formula

        vector = construct_good_runs(system, assumptions).vector
        formula = parse_formula(failure.formula, system.vocabulary)
        run = system.run(failure.run_name)
        _verdict, root = trace_evaluation(
            system, formula, run, failure.time, goodruns=vector
        )
        return render_why(root).splitlines()
    except Exception:  # pragma: no cover - diagnostics must not throw
        return []


def _shrunk_goodruns_counterexample(
    iteration: int,
    failure: OracleFailure,
    system: System,
    assumptions,
    optimality_cap: int,
) -> Counterexample:
    """Minimize the assumption vector while the same oracle kind keeps
    failing, and attach a why-false trace relative to its fixpoint."""
    kind = failure.oracle

    def still_fails(candidate) -> bool:
        return any(
            candidate_failure.oracle == kind
            for candidate_failure in check_goodruns_construction(
                system, candidate, optimality_cap=optimality_cap
            )
        )

    minimal = shrink_assumption_vector(assumptions, still_fails)
    shrunk = [
        candidate_failure
        for candidate_failure in check_goodruns_construction(
            system, minimal, optimality_cap=optimality_cap
        )
        if candidate_failure.oracle == kind
    ]
    witness = shrunk[0] if shrunk else failure
    return Counterexample(
        iteration=iteration,
        failure=witness,
        script=describe_assumptions(minimal),
        trace=_goodruns_trace(system, minimal, witness),
    )


def _cross_backend_trace(
    system: System, vector, failure: OracleFailure
) -> list[str]:
    """A belief-side why tree for a cross-backend disagreement.

    Wrong-direction failures are exactly the points where the belief
    semantics says *false* while the epistemic backend says *true*, so
    the belief trace (relative to the shrunk vector) explains the side
    the containment theorem claims should have held."""
    if (
        failure.formula is None
        or failure.run_name is None
        or failure.time is None
    ):
        return []
    try:
        from repro.terms.parser import parse_formula

        formula = parse_formula(failure.formula, system.vocabulary)
        run = system.run(failure.run_name)
        _verdict, root = trace_evaluation(
            system, formula, run, failure.time, goodruns=vector
        )
        return render_why(root).splitlines()
    except Exception:  # pragma: no cover - diagnostics must not throw
        return []


def _shrunk_cross_backend_counterexample(
    iteration: int,
    failure: OracleFailure,
    system: System,
    formulas,
    points,
    vector,
) -> Counterexample:
    """Minimize the restricting good-run vector while the same formula
    keeps disagreeing, then attach the belief why trace relative to the
    minimal vector."""
    from repro.semantics.goodvectors import GoodRunVector

    kind = (failure.oracle, failure.formula)

    def still_fails(candidate: GoodRunVector) -> bool:
        return any(
            (f.oracle, f.formula) == kind
            for f in check_cross_backend(
                system, formulas, points, goodruns=candidate
            )
        )

    # Greedy entry deletion: dropping an entry *weakens* the
    # restriction (absent principals default to all-runs-good), so the
    # surviving entries are the ones the disagreement actually needs.
    entries = dict(vector.entries)
    changed = True
    while changed:
        changed = False
        for principal in sorted(entries, key=str):
            candidate_map = {
                p: g for p, g in entries.items() if p != principal
            }
            if still_fails(GoodRunVector.of(candidate_map)):
                entries = candidate_map
                changed = True
                break
    minimal = GoodRunVector.of(entries)
    shrunk = [
        f
        for f in check_cross_backend(
            system, formulas, points, goodruns=minimal
        )
        if (f.oracle, f.formula) == kind
    ]
    witness = shrunk[0] if shrunk else failure
    script = [f"vector: {minimal.describe()}"]
    if witness.run_name is not None:
        script += describe_run(system.run(witness.run_name))
    return Counterexample(
        iteration=iteration,
        failure=witness,
        script=script,
        trace=_cross_backend_trace(system, minimal, witness),
    )


def _certified_proof(
    rng: random.Random, derivation: Derivation
) -> Proof | None:
    """Certify one randomly chosen derived fact into a checked proof.

    Facts whose certificates cannot be compiled (givens only, or rules
    without a certificate at this prefix) are skipped; a handful of
    candidates is plenty per iteration.
    """
    candidates = sorted(derivation.origins, key=str)
    if not candidates:
        return None
    rng.shuffle(candidates)
    for fact in candidates[:4]:
        try:
            proof = certify(derivation, fact.to_formula())
        except (CertificationError, ProofError):
            continue
        if len(proof.steps) >= 2:
            return proof
    return None


def run_fuzz(
    config: FuzzConfig,
    progress=None,
    replay_rules: Sequence[Rule] | None = None,
) -> FuzzReport:
    """Run one fuzzing campaign; pure in ``config``.

    ``replay_rules`` overrides the engine rule set the replay oracle
    closes assumptions under — test fixtures use it to plant a
    deliberately unsound rule and watch the oracle catch it.
    """
    unknown = set(config.oracles) - set(ORACLE_FAMILIES)
    if unknown:
        raise ValueError(
            f"unknown oracle families {sorted(unknown)}; "
            f"choose from {list(ORACLE_FAMILIES)}"
        )
    enabled = frozenset(config.oracles)
    report = FuzzReport(seed=config.seed)
    report.meta = run_metadata(
        command="fuzz", seed=config.seed, iterations=config.iterations,
        oracles=sorted(enabled), backend=config.backend,
    )
    iteration_seconds = metrics.registry().histogram(
        "fuzz_iteration_seconds", "Wall-clock per fuzz iteration."
    )
    span_mark = spans.mark()
    started = time.perf_counter()
    for iteration in range(config.iterations):
        # Each iteration runs in an ephemeral engine context: its
        # interned terms, kernel memos, and evaluator registrations are
        # dropped wholesale when the workload ends (bounding memory for
        # long campaigns), while its counters, spans, journal events,
        # and metrics are absorbed into the caller's context so
        # campaign telemetry stays whole.  The deterministic
        # correlation ID ties an iteration's journal events, span
        # attributes, and counterexamples together — and keeps reports
        # bit-reproducible per seed.
        corr_id = f"fuzz-{config.seed}-{iteration}"
        iter_ctx = context.fresh(f"fuzz-iter-{iteration}", corr_id=corr_id)
        iteration_started = time.perf_counter()
        with context.use(iter_ctx):
            before = len(report.counterexamples)
            _fuzz_iteration(config, enabled, report, iteration, replay_rules)
            fresh_examples = report.counterexamples[before:]
            if fresh_examples:
                # Attach the iteration's flight-recorder tail: the
                # last-N events (compiles, fallbacks, evictions, oracle
                # verdicts) leading up to the failure.
                events = journal.tail(JOURNAL_TAIL)
                for example in fresh_examples:
                    example.corr_id = corr_id
                    example.journal = events
        iteration_seconds.observe(time.perf_counter() - iteration_started)
        context.current().absorb(
            iter_ctx.counter_delta(), iter_ctx.span_delta(),
            iter_ctx.journal_delta(), iter_ctx.metrics_delta(),
        )
        report.iterations += 1
        if progress is not None:
            progress(report)
    report.elapsed_s = time.perf_counter() - started
    report.spans = summarize(spans.delta_since(span_mark))
    return report


def _fuzz_iteration(
    config: FuzzConfig,
    enabled: frozenset,
    report: FuzzReport,
    iteration: int,
    replay_rules: Sequence[Rule] | None,
) -> None:
    """One seeded workload, run under the caller-installed context."""
    with spans.span("fuzz.generate"):
        system, rng = generate_base_system(config, iteration)
    perf.count("fuzz.iterations")

    # Interpretation fuzzing: re-roll the Prim interpretation per
    # workload (seeded, picklable) and check the evaluator, clone,
    # and pickle legs all agree with the predicate directly.
    if "interpretation" in enabled:
        with spans.span("fuzz.interpretation"):
            system = randomize_interpretation(rng, system)
            interp_points = sample_points(rng, system, config.points_per_run)
            interp_failures = check_interpretation_agreement(
                system, interp_points
            )
        journal.record("oracle_verdict", oracle="prim_agreement",
                       checks=len(interp_points),
                       failures=len(interp_failures))
        report.count_check("prim_agreement", len(interp_points))
        for failure in interp_failures:
            report.counterexamples.append(
                Counterexample(
                    iteration=iteration,
                    failure=failure,
                    trace=_failure_trace(system, failure),
                )
            )

    # Oracle: the generator only emits well-formed systems.
    if "wf" in enabled:
        report.count_check("generator_wellformed", len(system.runs))
        for failure in check_clean_system(system):
            report.counterexamples.append(
                Counterexample(
                    iteration=iteration,
                    failure=failure,
                    script=describe_run(system.run(failure.run_name)),
                )
            )

    # Fault injection + WF classification oracle.
    mutation = None
    if "wf" in enabled:
        with spans.span("fuzz.mutate"):
            mutation = apply_random_mutator(rng, rng.choice(system.runs))
    if mutation is not None:
        perf.count(f"fuzz.mutations.{mutation.name}")
        stats = report.mutator_stats(mutation.name)
        stats.applied += 1
        report.count_check("wf_classification")
        failure = check_mutation(mutation)
        journal.record("oracle_verdict", oracle="wf_classification",
                       mutator=mutation.name,
                       failures=0 if failure is None else 1)
        if failure is None:
            stats.detected += 1
        else:
            stats.failed += 1
            report.counterexamples.append(
                _shrunk_counterexample(iteration, mutation, failure)
            )
        # A benign mutant that stayed clean is fresh differential
        # material: run the evaluator oracles on the mutated system.
        if failure is None and not mutation.expected:
            system = _system_with(system, mutation.run)

    # Differential evaluator oracles on the (possibly benign-mutated)
    # well-formed system.
    if enabled & {"differential", "compiled", "cross_backend"}:
        formulas = sample_formulas(
            rng, system, config.formulas_per_iteration
        )
        points = sample_points(rng, system, config.points_per_run)
    else:
        formulas, points = (), ()
    if "differential" in enabled and formulas and points:
        checks = len(formulas) * len(points)
        report.count_check("cache_differential", checks)
        report.count_check("hide_differential", checks)
        report.count_check("ground_path_differential", len(points))
        with spans.span("fuzz.differential", checks=checks):
            failures = (
                check_cache_differential(system, formulas, points)
                + check_hide_differential(system, formulas, points)
                + check_ground_path_differential(
                    rng, system, formulas, points
                )
            )
        journal.record("oracle_verdict", oracle="differential",
                       checks=checks, failures=len(failures))
        for failure in failures:
            run = system.run(failure.run_name) if failure.run_name else None
            report.counterexamples.append(
                Counterexample(
                    iteration=iteration,
                    failure=failure,
                    script=describe_run(run) if run is not None else [],
                    trace=_failure_trace(system, failure),
                )
            )

    # Compiled-vs-interpreted engine differential: the fast path the
    # sweep/audit/replay loops adopted must stay byte-identical to the
    # interpreter, under both hide variants.
    if "compiled" in enabled and formulas and points:
        checks = len(formulas) * len(points) * 2
        report.count_check("compiled_vs_interpreted", checks)
        with spans.span("fuzz.compiled", checks=checks):
            compiled_failures = check_compiled_differential(
                system, formulas, points
            ) + check_compiled_differential(
                system, formulas, points, pattern_hide=True
            )
        journal.record("oracle_verdict", oracle="compiled_vs_interpreted",
                       checks=checks, failures=len(compiled_failures))
        for failure in compiled_failures:
            run = system.run(failure.run_name) if failure.run_name else None
            report.counterexamples.append(
                Counterexample(
                    iteration=iteration,
                    failure=failure,
                    script=describe_run(run) if run is not None else [],
                    trace=_failure_trace(system, failure),
                )
            )

    # Cross-backend containment map: the belief and epistemic backends
    # are compared under a seeded restricting good-run vector (and
    # again unrestricted), under both hide variants.  Agreement is not
    # expected everywhere — belief-true/epistemic-false is the allowed
    # direction of the guarded-defensible-knowledge containment — but
    # error outcomes must match, belief-free formulas must agree
    # exactly, and an epistemic-true/belief-false verdict on a
    # belief-positive formula is a counterexample.
    if "cross_backend" in enabled and formulas and points:
        checks = len(formulas) * len(points) * 4
        report.count_check("cross_backend", checks)
        with spans.span("fuzz.cross_backend", checks=checks):
            cross_vector = sample_goodrun_vector(rng, system)
            cross_failures = (
                check_cross_backend(system, formulas, points)
                + check_cross_backend(
                    system, formulas, points, pattern_hide=True
                )
                + check_cross_backend(
                    system, formulas, points, goodruns=cross_vector
                )
                + check_cross_backend(
                    system, formulas, points, goodruns=cross_vector,
                    pattern_hide=True,
                )
            )
        journal.record("oracle_verdict", oracle="cross_backend",
                       checks=checks, failures=len(cross_failures))
        for failure in cross_failures:
            report.counterexamples.append(
                _shrunk_cross_backend_counterexample(
                    iteration, failure, system, formulas, points,
                    cross_vector,
                )
            )

    # Good-runs construction invariants: a random I1 assumption vector
    # through the Theorem 2/3 pipeline.  The whole check — the
    # construction, both engines, and the brute-force optimality
    # search — runs in its own ephemeral context (the enumeration warms
    # per-vector caches no later oracle wants), with counters and
    # spans (the per-stage ``goodruns.stage`` telemetry) absorbed back
    # into the iteration's context for the campaign report.
    if "goodruns_construction" in enabled:
        goodruns_ctx = context.fresh(f"fuzz-goodruns-{iteration}")
        with context.use(goodruns_ctx):
            with spans.span("fuzz.goodruns"):
                goodruns_assumptions = sample_assumption_vector(
                    rng, system, config.goodruns_assumptions
                )
                goodruns_failures = []
                if goodruns_assumptions is not None:
                    goodruns_failures = check_goodruns_construction(
                        system,
                        goodruns_assumptions,
                        optimality_cap=config.goodruns_optimality_cap,
                    )
        context.current().absorb(
            goodruns_ctx.counter_delta(), goodruns_ctx.span_delta(),
            goodruns_ctx.journal_delta(), goodruns_ctx.metrics_delta(),
        )
        if goodruns_assumptions is not None:
            report.count_check("goodruns_construction")
            journal.record("oracle_verdict", oracle="goodruns_construction",
                           failures=len(goodruns_failures))
        for failure in goodruns_failures:
            report.counterexamples.append(
                _shrunk_goodruns_counterexample(
                    iteration, failure, system, goodruns_assumptions,
                    config.goodruns_optimality_cap,
                )
            )

    # Engine-vs-semantics replay: close a true assumption set under
    # the (A11-excluded) rules, replay every derived fact at the
    # assumption point.  The derivation doubles as the proof corpus
    # for the mutation oracle below.
    derivation = None
    if enabled & {"engine_replay", "proof_mutation"}:
        with spans.span("fuzz.engine_replay"):
            replay_run = rng.choice(system.runs)
            replay_k = rng.choice(list(replay_run.times))
            replay_evaluator = get_backend(config.backend).compile(system)
            assumptions = sample_assumptions(
                rng, system, replay_evaluator, replay_run, replay_k,
                config.replay_assumptions,
            )
            replay_failures, derivation = check_engine_replay(
                system, replay_run, replay_k, assumptions,
                rules=replay_rules,
                max_facts=config.replay_max_facts,
                evaluator=replay_evaluator,
            )
        if "engine_replay" in enabled:
            derived = len(derivation.origins) if derivation else 0
            report.count_check("engine_replay", max(derived, 1))
            journal.record("oracle_verdict", oracle="engine_replay",
                           checks=max(derived, 1),
                           failures=len(replay_failures))
            for failure in replay_failures:
                report.counterexamples.append(
                    _shrunk_replay_counterexample(
                        iteration, failure, system, replay_run,
                        replay_k, assumptions, replay_rules,
                        config.replay_max_facts,
                    )
                )

    # Adversarial proof mutation: certify one derived fact into a
    # checked Hilbert proof and corrupt it; the checker must reject
    # every non-benign mutant with ProofError and never crash.
    if "proof_mutation" in enabled and derivation is not None:
        with spans.span("fuzz.proof_mutation"):
            proof = _certified_proof(rng, derivation)
            proof_failures: list[tuple[ProofMutation, OracleFailure]] = []
            if proof is not None:
                for _ in range(config.proof_mutations_per_iteration):
                    proof_mutation = apply_random_proof_mutator(rng, proof)
                    if proof_mutation is None:
                        break
                    perf.count(
                        f"fuzz.proof_mutations.{proof_mutation.name}"
                    )
                    stats = report.proof_mutator_stats(proof_mutation.name)
                    stats.applied += 1
                    report.count_check("proof_mutation")
                    failure = check_proof_mutation(proof_mutation, proof)
                    if failure is None:
                        stats.detected += 1
                    else:
                        stats.failed += 1
                        proof_failures.append((proof_mutation, failure))
            if proof is not None:
                journal.record("oracle_verdict", oracle="proof_mutation",
                               failures=len(proof_failures))
        for proof_mutation, failure in proof_failures:
            report.counterexamples.append(
                _shrunk_proof_counterexample(
                    iteration, proof_mutation, proof, failure
                )
            )

    # Periodic parallel-sweep differential (a full model-check, so
    # only every Nth iteration and with a tight instance cap).
    if (
        "parallel" in enabled
        and config.parallel_every
        and iteration % config.parallel_every == config.parallel_every - 1
    ):
        report.count_check("parallel_sweep_differential")
        with spans.span("fuzz.parallel_sweep"):
            failure = check_parallel_sweep(
                system, config.parallel_workers, config.parallel_instances
            )
        journal.record("oracle_verdict", oracle="parallel_sweep",
                       failures=0 if failure is None else 1)
        if failure is not None:
            report.counterexamples.append(
                Counterexample(iteration=iteration, failure=failure)
            )
