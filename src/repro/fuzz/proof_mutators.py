"""Adversarial mutations of checked Hilbert proofs.

The proof checker (:meth:`repro.logic.proof.Proof.check`) is the last
line of defence behind the derivation engine: ``certify`` compiles
engine derivations into R1/R2 proofs and the checker validates them
step by step.  These mutators take a proof that *passed* the checker
and surgically corrupt it; the oracle then asserts the checker's
verdict matches the mutation's expectation:

* ``reject`` — the mutant is invalid *by construction* (a swapped MP
  premise pair, a negated conclusion, a forged justification, a
  dangling step reference, a mangled axiom-argument tuple) and the
  checker must raise :class:`~repro.errors.ProofError`.  Raising
  anything else counts as a checker crash, which is its own failure —
  the exception-discipline contract the mutation oracle relies on.
* ``accept`` — the mutant is benign (any prefix of a valid proof is a
  valid proof, since steps only ever reference earlier steps) and the
  checker must *not* reject it: the over-rejection control.
* ``conservative`` — the mutant may or may not check (dropping a step
  without re-indexing shifts every later reference), but if it is
  accepted it must still prove the original conclusion from a subset
  of the original premises, and above all the checker must not crash.

Each ``reject`` mutator's docstring carries the argument for why the
corruption can never be accepted — the oracle is only as good as those
guarantees.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.errors import ProofError
from repro.logic.axioms import schema
from repro.logic.proof import (
    ByAxiom,
    ByModusPonens,
    ByNecessitation,
    ByPremise,
    ByTautology,
    Proof,
    Step,
)
from repro.logic.tautology import is_tautology
from repro.terms.formulas import Not

#: The checker must raise ProofError on this mutant.
REJECT = "reject"
#: The checker must accept this mutant.
ACCEPT = "accept"
#: Accepting is fine only if conclusion/premises are preserved.
CONSERVATIVE = "conservative"


@dataclass(frozen=True)
class ProofMutation:
    """One applied proof corruption, tagged with the expected verdict."""

    name: str
    proof: Proof
    expectation: str
    detail: str


ProofMutatorFn = Callable[[random.Random, Proof], "ProofMutation | None"]


def _with_step(proof: Proof, index: int, step: Step) -> Proof:
    steps = list(proof.steps)
    steps[index] = step
    return Proof(tuple(steps))


def mutate_swap_mp_premises(
    rng: random.Random, proof: Proof
) -> ProofMutation | None:
    """Swap the minor/major premise references of one MP step.

    Never acceptable: after the swap the checker reads the old
    antecedent formula φ as the major premise.  Acceptance would need
    φ = (φ ⊃ ψ) ⊃ ψ where ψ is the step's conclusion — a formula that
    strictly contains itself, which no finite term can.
    """
    indices = [
        index
        for index, step in enumerate(proof.steps)
        if isinstance(step.justification, ByModusPonens)
        and step.justification.antecedent != step.justification.implication
    ]
    if not indices:
        return None
    index = rng.choice(indices)
    step = proof.steps[index]
    justification = step.justification
    assert isinstance(justification, ByModusPonens)
    swapped = ByModusPonens(
        justification.implication, justification.antecedent
    )
    return ProofMutation(
        "swap_mp_premises",
        _with_step(proof, index, Step(step.formula, swapped)),
        REJECT,
        f"step {index}: MP premise references swapped",
    )


def mutate_rewrite_conclusion(
    rng: random.Random, proof: Proof
) -> ProofMutation | None:
    """Negate the formula of one non-premise step.

    Never acceptable: a tautology's negation is no tautology, and the
    axiom/MP/necessitation checks all compare the step formula against
    a rebuilt expectation that still equals the *original* formula —
    ``¬φ ≠ φ`` structurally for every φ.  (Premise steps are exempt:
    premises are assumptions, any formula is a legal premise.)
    """
    indices = [
        index
        for index, step in enumerate(proof.steps)
        if not isinstance(step.justification, ByPremise)
    ]
    if not indices:
        return None
    index = rng.choice(indices)
    step = proof.steps[index]
    return ProofMutation(
        "rewrite_conclusion",
        _with_step(proof, index, Step(Not(step.formula), step.justification)),
        REJECT,
        f"step {index}: conclusion negated",
    )


def mutate_forge_justification(
    rng: random.Random, proof: Proof
) -> ProofMutation | None:
    """Replace a step's justification with a bare "it's a tautology".

    Only applied to steps whose formula is verifiably *not* a
    propositional tautology (checked here, with the checker's own
    decision procedure), so rejection is guaranteed.
    """
    indices = []
    for index, step in enumerate(proof.steps):
        if isinstance(step.justification, ByTautology):
            continue
        try:
            if is_tautology(step.formula):
                continue
        except ProofError:
            continue
        indices.append(index)
    if not indices:
        return None
    index = rng.choice(indices)
    step = proof.steps[index]
    return ProofMutation(
        "forge_justification",
        _with_step(proof, index, Step(step.formula, ByTautology())),
        REJECT,
        f"step {index}: justification forged to 'tautology'",
    )


def mutate_dangling_reference(
    rng: random.Random, proof: Proof
) -> ProofMutation | None:
    """Rewire one MP/necessitation reference out of bounds.

    The target is the step's own index (a self-reference), a negative
    index, or one past the end — all outside the ``0 <= i < current``
    window ``Proof._fetch`` enforces, so rejection is guaranteed (and a
    raw ``IndexError`` would be a discipline bug, not a rejection).
    """
    indices = [
        index
        for index, step in enumerate(proof.steps)
        if isinstance(step.justification, (ByModusPonens, ByNecessitation))
    ]
    if not indices:
        return None
    index = rng.choice(indices)
    step = proof.steps[index]
    justification = step.justification
    target = rng.choice((index, -1, len(proof.steps) + rng.randrange(3)))
    if isinstance(justification, ByModusPonens):
        if rng.random() < 0.5:
            forged = ByModusPonens(target, justification.implication)
        else:
            forged = ByModusPonens(justification.antecedent, target)
    else:
        assert isinstance(justification, ByNecessitation)
        forged = ByNecessitation(target, justification.principal)
    return ProofMutation(
        "dangling_reference",
        _with_step(proof, index, Step(step.formula, forged)),
        REJECT,
        f"step {index}: reference rewired to {target}",
    )


def mutate_forge_axiom_args(
    rng: random.Random, proof: Proof
) -> ProofMutation | None:
    """Drop the last argument of one axiom instantiation.

    The schema rebuild must then either fail (wrong arity — which the
    checker is required to surface as ProofError, not TypeError) or
    produce a different instance than the step formula.  Indices where
    the truncated argument list happens to rebuild the *same* formula
    (a defaulted trailing argument) are skipped, keeping the reject
    guarantee honest.
    """
    indices = []
    for index, step in enumerate(proof.steps):
        justification = step.justification
        if not isinstance(justification, ByAxiom) or not justification.args:
            continue
        try:
            rebuilt = schema(justification.name).build(*justification.args[:-1])
        except Exception:
            indices.append(index)
            continue
        if rebuilt != step.formula:
            indices.append(index)
    if not indices:
        return None
    index = rng.choice(indices)
    step = proof.steps[index]
    justification = step.justification
    assert isinstance(justification, ByAxiom)
    forged = ByAxiom(justification.name, justification.args[:-1])
    return ProofMutation(
        "forge_axiom_args",
        _with_step(proof, index, Step(step.formula, forged)),
        REJECT,
        f"step {index}: axiom {justification.name} argument dropped",
    )


def mutate_truncate_steps(
    rng: random.Random, proof: Proof
) -> ProofMutation | None:
    """Cut the proof after a random step — the benign control.

    Every step of a checked proof references only earlier steps, so any
    non-empty prefix is itself a valid proof (of its own last formula).
    A rejection here means the checker started over-rejecting.
    """
    if len(proof.steps) < 2:
        return None
    cut = rng.randrange(1, len(proof.steps))
    return ProofMutation(
        "truncate_steps",
        Proof(proof.steps[:cut]),
        ACCEPT,
        f"proof truncated to its first {cut} step(s)",
    )


def mutate_drop_step(
    rng: random.Random, proof: Proof
) -> ProofMutation | None:
    """Delete one interior step *without* re-indexing later references.

    Every later reference shifts by one, so the mutant usually dangles
    or mismatches — but it can also land on a step of the right shape
    and check.  That is fine exactly when the surviving proof still
    concludes the original conclusion from a subset of the original
    premises; the expectation is ``conservative`` and the real payload
    is the crash oracle (shifted references must never escape as
    ``IndexError``/``KeyError``).
    """
    if len(proof.steps) < 2:
        return None
    index = rng.randrange(0, len(proof.steps) - 1)
    return ProofMutation(
        "drop_step",
        Proof(proof.steps[:index] + proof.steps[index + 1:]),
        CONSERVATIVE,
        f"step {index} dropped without re-indexing",
    )


PROOF_MUTATORS: dict[str, ProofMutatorFn] = {
    "swap_mp_premises": mutate_swap_mp_premises,
    "rewrite_conclusion": mutate_rewrite_conclusion,
    "forge_justification": mutate_forge_justification,
    "dangling_reference": mutate_dangling_reference,
    "forge_axiom_args": mutate_forge_axiom_args,
    "truncate_steps": mutate_truncate_steps,
    "drop_step": mutate_drop_step,
}


def apply_random_proof_mutator(
    rng: random.Random, proof: Proof
) -> ProofMutation | None:
    """Apply a randomly chosen applicable proof mutator, or None.

    As with the run mutators, candidates are a seeded shuffle of the
    *name-sorted* registry, so registering a new mutator cannot change
    what existing seeds reproduce.
    """
    names = sorted(PROOF_MUTATORS)
    rng.shuffle(names)
    for name in names:
        mutation = PROOF_MUTATORS[name](rng, proof)
        if mutation is not None:
            return mutation
    return None
