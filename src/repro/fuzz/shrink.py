"""Greedy counterexample minimization.

When an oracle fails, the raw artifact is a randomly generated (and
possibly mutated) run — dozens of states of noise around the few
actions that matter.  The shrinker greedily applies three reductions,
keeping a candidate only if the caller's predicate still fails on it:

1. **action removal** — delete one global-history entry (and its local
   mirror) everywhere it occurs;
2. **stutter collapse** — drop states identical to their predecessor;
3. **tail truncation** — cut trailing states.

All three preserve run validity (cumulative histories stay cumulative;
the time-0 state stays in the window), and the loop re-runs until no
single reduction fires — a local minimum, which for greedy shrinking is
the standard stopping point.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Iterator, Sequence

from repro.errors import ReproError
from repro.logic.proof import Proof
from repro.model.actions import Action, Receive, Send
from repro.model.runs import Run
from repro.model.states import EnvState, LocalState
from repro.terms.formulas import Formula

Predicate = Callable[[Run], bool]


def _transit_balance(env: EnvState, recipient, message) -> int:
    """Sent-minus-received count for ``(recipient, message)`` in a state."""
    balance = 0
    for who, action in env.history:
        if isinstance(action, Send):
            if action.recipient == recipient and action.message == message:
                balance += 1
        elif isinstance(action, Receive):
            if who == recipient and action.message == message:
                balance -= 1
    return balance


def _repair_buffer(env: EnvState, original: EnvState, removed) -> EnvState:
    """Undo the transit effect of a history entry deleted from ``env``.

    A deleted send should take its buffered copy with it; a deleted
    receive should put the copy back.  Without this, every reduction of
    a send/receive would manufacture a WFB buffer-discipline violation
    and the shrinker could never remove traffic.  Untracked principals
    (no buffer entry) are left alone, and the caller's predicate still
    decides whether the repaired candidate reproduces the failure.
    """
    who, action = removed
    buffers = dict(env.buffer_map)
    if isinstance(action, Send):
        pending = buffers.get(action.recipient)
        if (
            pending
            and action.message in pending
            and _transit_balance(original, action.recipient, action.message) > 0
        ):
            index = pending.index(action.message)
            buffers[action.recipient] = pending[:index] + pending[index + 1:]
            return env.with_buffers(buffers)
    elif isinstance(action, Receive):
        if who in buffers and _transit_balance(env, who, action.message) > 0:
            buffers[who] = buffers[who] + (action.message,)
            return env.with_buffers(buffers)
    return env


def _try(candidate_thunk) -> Run | None:
    """Build a candidate, tolerating surgery that produces invalid runs."""
    try:
        return candidate_thunk()
    except (ReproError, AssertionError, IndexError):
        return None


def remove_entry(run: Run, env_index: int) -> Run:
    """Delete the env-history entry at ``env_index`` from every state,
    mirroring the deletion into the performer's local history."""
    final = run.states[-1].env.history
    who, action = final[env_index]
    local_index: int | None = None
    if who != run.environment and run.is_system_principal(who):
        local_index = sum(
            1 for other, _a in final[:env_index] if other == who
        )
    states = []
    for state in run.states:
        env = state.env
        if len(env.history) > env_index and env.history[env_index] == (who, action):
            original = env
            env = EnvState(
                env.history[:env_index] + env.history[env_index + 1:],
                env.keys, env.buffers, env.data,
            )
            env = _repair_buffer(env, original, (who, action))
            state = state.with_env(env)
        if local_index is not None:
            local = state.local(who)
            if len(local.history) > local_index:
                state = state.with_local(
                    who,
                    LocalState(
                        local.history[:local_index]
                        + local.history[local_index + 1:],
                        local.keys, local.data,
                    ),
                )
        states.append(state)
    return replace(run, states=tuple(states))


def collapse_stutters(run: Run) -> Run:
    """Drop states identical to their predecessor (idle steps)."""
    states = [run.states[0]]
    start = run.start_time
    for index in range(1, len(run.states)):
        state = run.states[index]
        if state == states[-1]:
            if run.start_time + index <= 0:
                start += 1
            continue
        states.append(state)
    if start > 0:
        return run
    return replace(run, states=tuple(states), start_time=start)


def _candidates(run: Run) -> Iterator[Run]:
    """One-step reductions of the run, most aggressive first."""
    minimum = max(1, 1 - run.start_time)
    length = len(run.states)
    if length > minimum:
        yield_from = [minimum, length // 2, length - 1]
        seen = set()
        for target in yield_from:
            if target < minimum or target >= length or target in seen:
                continue
            seen.add(target)
            candidate = _try(
                lambda t=target: replace(run, states=run.states[:t])
            )
            if candidate is not None:
                yield candidate
    history = run.states[-1].env.history
    for index in range(len(history)):
        candidate = _try(lambda i=index: remove_entry(run, i))
        if candidate is not None:
            yield candidate
    collapsed = _try(lambda: collapse_stutters(run))
    if collapsed is not None and len(collapsed.states) < len(run.states):
        yield collapsed


def shrink_run(run: Run, still_fails: Predicate, max_steps: int = 400) -> Run:
    """Greedily minimize a failing run.

    ``still_fails`` must return True on any candidate that reproduces
    the original failure; the original run is assumed failing.  Each
    accepted reduction restarts the scan, so the result is 1-minimal
    with respect to the three reduction operators (up to ``max_steps``
    candidate evaluations).
    """
    current = run
    budget = max_steps
    improved = True
    while improved and budget > 0:
        improved = False
        for candidate in _candidates(current):
            budget -= 1
            failing = False
            try:
                failing = still_fails(candidate)
            except ReproError:
                failing = False
            if failing:
                current = candidate
                improved = True
                break
            if budget <= 0:
                break
    return current


def _proof_candidates(proof: Proof) -> Iterator[Proof]:
    """One-step proof reductions, most aggressive first.

    Tail truncations and single-step deletions (references left
    untouched — an invalid candidate simply fails the predicate).  The
    empty proof is never yielded.
    """
    length = len(proof.steps)
    seen = set()
    for cut in (1, length // 2, length - 1):
        if 1 <= cut < length and cut not in seen:
            seen.add(cut)
            yield Proof(proof.steps[:cut])
    for index in range(length - 1):
        yield Proof(proof.steps[:index] + proof.steps[index + 1:])


def shrink_proof(
    proof: Proof,
    still_fails: Callable[[Proof], bool],
    max_steps: int = 200,
) -> Proof:
    """Greedily minimize a proof artifact while the predicate holds.

    Same contract as :func:`shrink_run`: ``still_fails`` returns True
    on candidates that reproduce the original failure, a predicate
    that raises counts as not-failing, and each accepted reduction
    restarts the scan.
    """
    current = proof
    budget = max_steps
    improved = True
    while improved and budget > 0:
        improved = False
        for candidate in _proof_candidates(current):
            budget -= 1
            try:
                failing = still_fails(candidate)
            except Exception:
                failing = False
            if failing:
                current = candidate
                improved = True
                break
            if budget <= 0:
                break
    return current


def shrink_assumptions(
    assumptions: Sequence[Formula],
    still_fails: Callable[[tuple[Formula, ...]], bool],
    max_steps: int = 200,
) -> tuple[Formula, ...]:
    """Greedily drop assumptions while the failure persists.

    The natural minimal reproduction for an engine-replay failure is
    the smallest assumption set that still derives a false fact.
    """
    current = list(assumptions)
    budget = max_steps
    improved = True
    while improved and budget > 0:
        improved = False
        for index in range(len(current)):
            candidate = tuple(current[:index] + current[index + 1:])
            budget -= 1
            try:
                failing = still_fails(candidate)
            except Exception:
                failing = False
            if failing:
                current = list(candidate)
                improved = True
                break
            if budget <= 0:
                break
    return tuple(current)


def shrink_assumption_vector(
    assumptions,
    still_fails,
    max_steps: int = 200,
):
    """Greedily drop (principal, formula) entries from an
    :class:`~repro.goodruns.assumptions.InitialAssumptions` vector while
    the failure persists.

    Same contract as :func:`shrink_assumptions`, lifted to the
    per-principal structure: each step removes one assumption formula
    (principals left with none disappear from the vector), the
    candidate is rebuilt through ``InitialAssumptions.of`` so its
    invariants re-validate, and a predicate that raises counts as
    not-failing.
    """
    from repro.goodruns.assumptions import InitialAssumptions

    def rebuild(entries):
        assignment = {}
        for principal, formula in entries:
            assignment.setdefault(principal, []).append(formula)
        return InitialAssumptions.of(
            {p: tuple(fs) for p, fs in assignment.items()}
        )

    current = [
        (principal, formula)
        for principal, formula in assumptions.all_formulas()
    ]
    budget = max_steps
    improved = True
    while improved and budget > 0:
        improved = False
        for index in range(len(current)):
            entries = current[:index] + current[index + 1:]
            budget -= 1
            try:
                failing = still_fails(rebuild(entries))
            except Exception:
                failing = False
            if failing:
                current = entries
                improved = True
                break
            if budget <= 0:
                break
    return rebuild(current)


def describe_proof(proof: Proof) -> list[str]:
    """A compact, numbered rendering of a proof for the JSON report."""
    lines = [f"proof: {len(proof.steps)} step(s)"]
    for index, step in enumerate(proof.steps):
        lines.append(f"  {index}. {step.formula}   [{step.justification}]")
    return lines


def describe_run(run: Run) -> list[str]:
    """A compact, human-readable action script of the run."""
    lines = [
        f"run {run.name!r}: times {run.start_time}..{run.end_time}, "
        f"principals {[str(p) for p in run.principals]}"
    ]
    for k in run.times:
        for principal in run.all_principals:
            for action in run.performed(principal, k):
                assert isinstance(action, Action)
                lines.append(f"  t={k} {principal}: {action}")
    first = run.states[0]
    for principal, pending in first.env.buffers:
        if pending:
            lines.append(
                f"  t={run.start_time} buffer[{principal}] = "
                f"{[str(m) for m in pending]}"
            )
    return lines
