"""Differential run-fuzzing and fault injection.

The soundness of Theorem 1 hinges on the well-formedness restrictions
of Section 5 and on the semantic kernels behaving identically across
every fast path (interning, memoization, the ground-formula shortcut,
the parallel sweep).  This package *generates* hostile runs and checks
those invariants differentially instead of trusting the hand-built
protocol systems:

* :mod:`repro.fuzz.generate` — seeded random workload generation
  (layered on the E3 system generator, well-formed by construction);
* :mod:`repro.fuzz.mutators` — fault injectors, each tagged with the
  WF condition it should trip (or with none, for benign mutations);
* :mod:`repro.fuzz.oracles` — the WF-classification oracle and the
  cache/interning, hide, ground-path, and parallel-sweep differentials;
* :mod:`repro.fuzz.shrink` — greedy counterexample minimization;
* :mod:`repro.fuzz.harness` — the campaign driver and JSON report
  behind ``python -m repro fuzz``.
"""

from repro.fuzz.generate import FuzzConfig, generate_base_system
from repro.fuzz.harness import Counterexample, FuzzReport, run_fuzz
from repro.fuzz.mutators import MUTATORS, Mutation, apply_random_mutator
from repro.fuzz.oracles import (
    OracleFailure,
    check_cache_differential,
    check_clean_system,
    check_ground_path_differential,
    check_hide_differential,
    check_mutation,
    check_parallel_sweep,
    deintern,
)
from repro.fuzz.shrink import describe_run, shrink_run

__all__ = [
    "FuzzConfig",
    "generate_base_system",
    "Counterexample",
    "FuzzReport",
    "run_fuzz",
    "MUTATORS",
    "Mutation",
    "apply_random_mutator",
    "OracleFailure",
    "check_cache_differential",
    "check_clean_system",
    "check_ground_path_differential",
    "check_hide_differential",
    "check_mutation",
    "check_parallel_sweep",
    "deintern",
    "describe_run",
    "shrink_run",
]
