"""Differential run-fuzzing and fault injection.

The soundness of Theorem 1 hinges on the well-formedness restrictions
of Section 5 and on the semantic kernels behaving identically across
every fast path (interning, memoization, the ground-formula shortcut,
the parallel sweep).  This package *generates* hostile runs and checks
those invariants differentially instead of trusting the hand-built
protocol systems:

* :mod:`repro.fuzz.generate` — seeded random workload generation
  (layered on the E3 system generator, well-formed by construction),
  including per-workload Prim interpretation randomization;
* :mod:`repro.fuzz.mutators` — run fault injectors, each tagged with
  the WF condition it should trip (or with none, for benign mutations);
* :mod:`repro.fuzz.proof_mutators` — adversarial mutations of checked
  Hilbert proofs, tagged with the verdict the checker must return;
* :mod:`repro.fuzz.oracles` — the WF-classification oracle and the
  cache/interning, hide, ground-path, and parallel-sweep differentials;
* :mod:`repro.fuzz.logic_oracles` — the derivation-layer oracles:
  engine-vs-semantics replay, proof-mutation checking, and Prim
  interpretation agreement;
* :mod:`repro.fuzz.goodruns_oracles` — the Theorem 2/3 construction
  oracles: support, stage monotonicity, fixpoint idempotence, engine
  agreement, and brute-force optimality on small systems;
* :mod:`repro.fuzz.shrink` — greedy counterexample minimization for
  runs, assumption sets, and proofs;
* :mod:`repro.fuzz.harness` — the campaign driver and JSON report
  behind ``python -m repro fuzz``.
"""

from repro.fuzz.generate import (
    ORACLE_FAMILIES,
    FuzzConfig,
    generate_base_system,
    randomize_interpretation,
)
from repro.fuzz.goodruns_oracles import (
    check_goodruns_construction,
    deep_assumptions,
    describe_assumptions,
    sample_assumption_vector,
)
from repro.fuzz.harness import Counterexample, FuzzReport, run_fuzz
from repro.fuzz.logic_oracles import (
    REPLAY_EXCLUDED_RULES,
    check_engine_replay,
    check_interpretation_agreement,
    check_proof_mutation,
    replay_rules,
    sample_assumptions,
)
from repro.fuzz.mutators import MUTATORS, Mutation, apply_random_mutator
from repro.fuzz.oracles import (
    OracleFailure,
    check_cache_differential,
    check_clean_system,
    check_cross_backend,
    check_ground_path_differential,
    check_hide_differential,
    check_mutation,
    check_parallel_sweep,
    deintern,
    sample_goodrun_vector,
)
from repro.fuzz.proof_mutators import (
    PROOF_MUTATORS,
    ProofMutation,
    apply_random_proof_mutator,
)
from repro.fuzz.shrink import (
    describe_proof,
    describe_run,
    shrink_assumption_vector,
    shrink_assumptions,
    shrink_proof,
    shrink_run,
)

__all__ = [
    "ORACLE_FAMILIES",
    "FuzzConfig",
    "generate_base_system",
    "randomize_interpretation",
    "check_goodruns_construction",
    "deep_assumptions",
    "describe_assumptions",
    "sample_assumption_vector",
    "Counterexample",
    "FuzzReport",
    "run_fuzz",
    "REPLAY_EXCLUDED_RULES",
    "check_engine_replay",
    "check_interpretation_agreement",
    "check_proof_mutation",
    "replay_rules",
    "sample_assumptions",
    "MUTATORS",
    "Mutation",
    "apply_random_mutator",
    "OracleFailure",
    "check_cache_differential",
    "check_clean_system",
    "check_cross_backend",
    "check_ground_path_differential",
    "check_hide_differential",
    "check_mutation",
    "check_parallel_sweep",
    "deintern",
    "sample_goodrun_vector",
    "PROOF_MUTATORS",
    "ProofMutation",
    "apply_random_proof_mutator",
    "describe_proof",
    "describe_run",
    "shrink_assumption_vector",
    "shrink_assumptions",
    "shrink_proof",
    "shrink_run",
]
