"""Compound messages of ``M_T`` (conditions M3-M6 of Section 4.1).

* ``(X1, ..., Xk)``   — :class:`Group`, concatenation of messages (M3);
* ``{X^P}_K``         — :class:`Encrypted`, X encrypted under key K with
  *from field* P naming the (claimed) sender (M4);
* ``(X^P)_Y``         — :class:`Combined`, X combined with the secret Y,
  again with a from field (M5);
* ``'X'``             — :class:`Forwarded`, X marked as merely forwarded
  rather than newly constructed (M6, introduced in Section 3.2).

The from field exists "only in implementing an assumption that each
principal can recognize and ignore its own messages" (Section 2.1); the
printer renders it only when asked, and well-formedness condition WF4
(Section 5) requires *system* principals to set it truthfully, while the
environment may lie.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import TermError
from repro.terms.atoms import Key, Parameter, Principal, Sort
from repro.terms.base import Message


def _require_message(value: object, role: str) -> None:
    if not isinstance(value, Message):
        raise TermError(f"{role} must be a Message, got {value!r}")


def _require_key_like(value: object, role: str) -> None:
    """A key position accepts a key constant or a key-sorted parameter."""
    if isinstance(value, Key):
        return
    if isinstance(value, Parameter) and value.value_sort is Sort.KEY:
        return
    raise TermError(f"{role} must be a Key or key-sorted Parameter, got {value!r}")


def _require_principal_like(value: object, role: str) -> None:
    """A principal position accepts a principal constant or parameter."""
    if isinstance(value, Principal):
        return
    if isinstance(value, Parameter) and value.value_sort is Sort.PRINCIPAL:
        return
    raise TermError(
        f"{role} must be a Principal or principal-sorted Parameter, got {value!r}"
    )


@dataclass(frozen=True, eq=False)
class Group(Message):
    """``(X1, ..., Xk)`` — messages combined by concatenation (M3).

    In the original BAN presentation the comma doubles as conjunction;
    the reformulated logic separates the two, so a Group is always a
    *message* and :class:`repro.terms.formulas.And` is the conjunction
    of formulas.  A Group must have at least two parts: a one-part group
    would be indistinguishable from its part, and the paper never forms
    one.
    """

    parts: tuple[Message, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.parts, tuple):
            raise TermError("Group parts must be a tuple; use group() to build one")
        if len(self.parts) < 2:
            raise TermError(f"Group needs at least 2 parts, got {len(self.parts)}")
        for part in self.parts:
            _require_message(part, "Group part")

    def __str__(self) -> str:
        return "(" + ", ".join(str(part) for part in self.parts) + ")"


def group(*parts: Message) -> Message:
    """Build ``(X1, ..., Xk)``, collapsing the degenerate one-part case.

    ``group(X)`` is just ``X``: concatenating a single message is the
    message itself.  This keeps idealization code uniform when a message
    happens to have one component.
    """
    if not parts:
        raise TermError("group() needs at least one part")
    if len(parts) == 1:
        _require_message(parts[0], "group part")
        return parts[0]
    return Group(tuple(parts))


@dataclass(frozen=True, eq=False)
class Encrypted(Message):
    """``{X^P}_K`` — the message X encrypted under K, from field P (M4).

    ``{X}_K`` in the paper abbreviates ``{X^P}_K`` "where P is a from
    field denoting the principal (usually clear from context) sending
    the message".  The from field is how a principal recognizes (and
    ignores) its own messages; it is *not* authenticated by itself.
    """

    body: Message
    key: Message
    sender: Message

    def __post_init__(self) -> None:
        _require_message(self.body, "Encrypted body")
        _require_key_like(self.key, "Encrypted key")
        _require_principal_like(self.sender, "Encrypted from field")

    def __str__(self) -> str:
        return f"{{{self.body}}}_{self.key} from {self.sender}"


@dataclass(frozen=True, eq=False)
class Combined(Message):
    """``(X^P)_Y`` — X combined with the secret Y, from field P (M5).

    Y is "a secret of some kind whose presence in the message proves the
    identity of the sender, just as the key used to encrypt a message
    can" (Section 2.1).  Unlike encryption, combining does not conceal
    X: anyone can read X (see ``seen_submsgs``), but only holders of the
    secret are supposed to be able to *produce* the combination.
    """

    body: Message
    secret: Message
    sender: Message

    def __post_init__(self) -> None:
        _require_message(self.body, "Combined body")
        _require_message(self.secret, "Combined secret")
        _require_principal_like(self.sender, "Combined from field")

    def __str__(self) -> str:
        return f"<{self.body}>_{self.secret} from {self.sender}"


@dataclass(frozen=True, eq=False)
class Forwarded(Message):
    """``'X'`` — X marked as forwarded, not newly constructed (M6).

    Section 3.2 introduces this syntax so that a principal relaying a
    message it cannot vouch for is not "considered to have said" the
    contents.  Axiom A14 holds a principal that *misuses* the syntax
    (forwarding something it never saw) accountable for the contents.
    """

    body: Message

    def __post_init__(self) -> None:
        _require_message(self.body, "Forwarded body")

    def __str__(self) -> str:
        return f"'{self.body}'"


def encrypted(body: Message, key: Message, sender: Message) -> Encrypted:
    """Convenience constructor for ``{body^sender}_key``."""
    return Encrypted(body, key, sender)


def combined(body: Message, secret: Message, sender: Message) -> Combined:
    """Convenience constructor for ``(body^sender)_secret``."""
    return Combined(body, secret, sender)


def forwarded(body: Message) -> Forwarded:
    """Convenience constructor for ``'body'``."""
    return Forwarded(body)


def group_parts(message: Message) -> tuple[Message, ...]:
    """Return the concatenation components of a message.

    A :class:`Group` yields its parts; any other message is its own
    single component.  This is the decomposition used by axioms A7 and
    A12 ("a principal sees/says every component of a message").
    """
    if isinstance(message, Group):
        return message.parts
    return (message,)


def flatten(messages: Iterable[Message]) -> tuple[Message, ...]:
    """Flatten one level of grouping across an iterable of messages."""
    out: list[Message] = []
    for message in messages:
        out.extend(group_parts(message))
    return tuple(out)
