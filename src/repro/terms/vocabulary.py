"""Vocabularies: the declared constant symbols of a protocol or system.

The language of Section 4.1 is built over a set ``T`` of primitive
terms partitioned into primitive propositions, principals, shared keys,
and other constants (nonces, timestamps, ...).  A :class:`Vocabulary`
records one such partition.  The parser resolves identifiers through a
vocabulary; universal quantification (Section 8) ranges over the
vocabulary's constants of the bound sort; and the soundness harness
synthesizes formula pools from a system's vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.errors import VocabularyError
from repro.terms.atoms import (
    Atom,
    Key,
    Nonce,
    Parameter,
    PrimitiveProposition,
    Principal,
    PrivateKey,
    PublicKey,
    Sort,
)

_KEYWORDS = frozenset(
    {
        "believes",
        "controls",
        "sees",
        "said",
        "says",
        "has",
        "fresh",
        "from",
        "forall",
        "true",
        "secret",
        "newkey",
        "pk",
        "inv",
    }
)


def _check_declarable(name: str) -> None:
    if name in _KEYWORDS:
        raise VocabularyError(f"{name!r} is a reserved keyword")
    if not name or not name[0].isalpha() or not name.isalnum():
        raise VocabularyError(
            f"declared names must be alphanumeric and start with a letter: {name!r}"
        )


@dataclass
class Vocabulary:
    """A mutable registry of the constant symbols in scope.

    Names are unique across all sorts, so an identifier resolves
    unambiguously.  Parameters (Section 8) live in the same namespace
    but are referenced as ``?name`` in the surface syntax.
    """

    _symbols: dict[str, Atom | Parameter] = field(default_factory=dict)

    # -- declaration -------------------------------------------------------

    def _declare(self, symbol: Atom | Parameter) -> None:
        _check_declarable(symbol.name)
        existing = self._symbols.get(symbol.name)
        if existing is not None and existing != symbol:
            raise VocabularyError(
                f"{symbol.name!r} already declared as {existing!r}"
            )
        self._symbols[symbol.name] = symbol

    def principal(self, name: str) -> Principal:
        """Declare (or re-fetch) a principal constant."""
        symbol = Principal(name)
        self._declare(symbol)
        return symbol

    def principals(self, *names: str) -> tuple[Principal, ...]:
        return tuple(self.principal(name) for name in names)

    def key(self, name: str) -> Key:
        """Declare (or re-fetch) a shared-key constant."""
        symbol = Key(name)
        self._declare(symbol)
        return symbol

    def keys(self, *names: str) -> tuple[Key, ...]:
        return tuple(self.key(name) for name in names)

    def keypair(self, name: str) -> tuple[PublicKey, PrivateKey]:
        """Declare a public/private key pair sharing one name.

        Only the public half enters the symbol table (the parser
        resolves the name to it); the private half is reachable as its
        ``partner``.
        """
        public = PublicKey(name)
        self._declare(public)
        return public, public.partner

    def nonce(self, name: str) -> Nonce:
        """Declare (or re-fetch) a nonce/timestamp/data constant."""
        symbol = Nonce(name)
        self._declare(symbol)
        return symbol

    def nonces(self, *names: str) -> tuple[Nonce, ...]:
        return tuple(self.nonce(name) for name in names)

    def proposition(self, name: str) -> PrimitiveProposition:
        """Declare (or re-fetch) a primitive proposition."""
        symbol = PrimitiveProposition(name)
        self._declare(symbol)
        return symbol

    def parameter(self, name: str, sort: Sort) -> Parameter:
        """Declare (or re-fetch) a run-valued parameter (Section 8)."""
        symbol = Parameter(name, sort)
        self._declare(symbol)
        return symbol

    # -- lookup ------------------------------------------------------------

    def lookup(self, name: str) -> Atom | Parameter:
        """Resolve an identifier, raising :class:`VocabularyError` if unknown."""
        try:
            return self._symbols[name]
        except KeyError:
            raise VocabularyError(f"undeclared identifier: {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._symbols

    def __iter__(self) -> Iterator[Atom | Parameter]:
        return iter(self._symbols.values())

    def __len__(self) -> int:
        return len(self._symbols)

    def constants(self, sort: Sort) -> tuple[Atom, ...]:
        """All declared constants of the given sort (excludes parameters)."""
        wanted: type
        if sort is Sort.PRINCIPAL:
            wanted = Principal
        elif sort is Sort.KEY:
            wanted = Key
        elif sort is Sort.NONCE:
            wanted = Nonce
        elif sort is Sort.PROPOSITION:
            wanted = PrimitiveProposition
        else:  # pragma: no cover - exhaustive over Sort
            raise VocabularyError(f"unknown sort {sort!r}")
        return tuple(
            symbol
            for symbol in self._symbols.values()
            if isinstance(symbol, wanted) and not isinstance(symbol, Parameter)
        )

    def merge(self, other: "Vocabulary") -> "Vocabulary":
        """Return a new vocabulary containing both symbol tables."""
        merged = Vocabulary()
        for symbol in self:
            merged._declare(symbol)
        for symbol in other:
            merged._declare(symbol)
        return merged

    @classmethod
    def of(cls, symbols: Iterable[Atom | Parameter]) -> "Vocabulary":
        """Build a vocabulary from an iterable of already-made symbols."""
        vocabulary = cls()
        for symbol in symbols:
            vocabulary._declare(symbol)
        return vocabulary
