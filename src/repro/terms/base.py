"""Abstract base class for the message language ``M_T``.

The language of Section 4.1 is two-sorted: *messages* are the things
principals can send, and *formulas* are the sublanguage of messages to
which truth values can be assigned (condition M1).  That containment is
mirrored directly in the class hierarchy::

    Message
    ├── Atom / Parameter / Opaque        (repro.terms.atoms)
    ├── Group / Encrypted / Combined / Forwarded   (repro.terms.messages)
    └── Formula                           (repro.terms.formulas)
        ├── Prim, Not, And, Or, Implies, Iff, Truth
        ├── Believes, Controls, Sees, Said, Says
        ├── SharedKey, SharedSecret, Fresh, Has
        └── ForAll                        (Section 8 extension)

All nodes are frozen dataclasses: structurally immutable, hashable, and
compared by value, which is exactly what a symbolic term language needs
(sub-message sets, fact sets, and memo tables all key on terms).

Terms are additionally *hash-consed* (:mod:`repro.terms.intern`): the
constructors return one canonical instance per structurally-distinct
term, every node carries a precomputed hash, and ``==`` is usually a
pointer comparison.  Subclasses must therefore be declared with
``@dataclass(frozen=True, eq=False)`` so they inherit the cached
``__hash__``/``__eq__`` defined here instead of regenerating the
field-walking versions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.terms.intern import InternMeta, intern_key, reconstruct


@dataclass(frozen=True, eq=False)
class Message(metaclass=InternMeta):
    """A message of the language ``M_T`` (Section 4.1).

    Subclasses implement ``__str__`` to render the paper's notation.
    Use :func:`repro.terms.ops.submessages` and friends for traversal
    rather than poking at fields generically.
    """

    def is_formula(self) -> bool:
        """Return True iff this message belongs to the sublanguage ``F_T``."""
        from repro.terms.formulas import Formula

        return isinstance(self, Formula)

    # -- interned identity ---------------------------------------------------

    def __hash__(self) -> int:
        # Set once by InternMeta; the fallback covers instances created
        # behind the constructor's back (e.g. by copy protocols).
        try:
            return self._hash
        except AttributeError:
            h = hash(intern_key(self))
            object.__setattr__(self, "_hash", h)
            return h

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if type(other) is not type(self):
            # Exact-type equality, matching the dataclass-generated
            # semantics this replaces (Key("a") != PublicKey("a")).
            return NotImplemented if not isinstance(other, Message) else False
        # Same type but different objects.  Distinct hashes settle it
        # without walking fields — the common case, since set/dict
        # probes compare everything that lands in the same bucket.
        if self.__hash__() != other.__hash__():
            return False
        # Hash collision, or terms that bypassed interning (unpickled
        # mid-flight, copied).  Compare structurally so correctness
        # never depends on interning.
        return intern_key(self)[1:] == intern_key(other)[1:]

    def __reduce__(self):
        # Rebuild through the constructor so unpickled terms re-intern
        # (and recompute their per-process structural hash).
        key = intern_key(self)
        return (reconstruct, (key[0], key[1:]))
