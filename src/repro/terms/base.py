"""Abstract base class for the message language ``M_T``.

The language of Section 4.1 is two-sorted: *messages* are the things
principals can send, and *formulas* are the sublanguage of messages to
which truth values can be assigned (condition M1).  That containment is
mirrored directly in the class hierarchy::

    Message
    ├── Atom / Parameter / Opaque        (repro.terms.atoms)
    ├── Group / Encrypted / Combined / Forwarded   (repro.terms.messages)
    └── Formula                           (repro.terms.formulas)
        ├── Prim, Not, And, Or, Implies, Iff, Truth
        ├── Believes, Controls, Sees, Said, Says
        ├── SharedKey, SharedSecret, Fresh, Has
        └── ForAll                        (Section 8 extension)

All nodes are frozen dataclasses: structurally immutable, hashable, and
compared by value, which is exactly what a symbolic term language needs
(sub-message sets, fact sets, and memo tables all key on terms).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Message:
    """A message of the language ``M_T`` (Section 4.1).

    Subclasses implement ``__str__`` to render the paper's notation.
    Use :func:`repro.terms.ops.submessages` and friends for traversal
    rather than poking at fields generically.
    """

    def is_formula(self) -> bool:
        """Return True iff this message belongs to the sublanguage ``F_T``."""
        from repro.terms.formulas import Formula

        return isinstance(self, Formula)
