"""The formula sublanguage ``F_T`` (conditions F1-F8 of Section 4.1).

Formulas are the messages to which truth values can be assigned.  The
constructors below follow the paper's grammar:

* F1 — :class:`Prim` wraps a primitive proposition;
* F2 — :class:`Not` and :class:`And`; the paper defines the other
  propositional connectives in terms of these, and we make
  :class:`Or`, :class:`Implies`, :class:`Iff`, and :class:`Truth`
  first-class nodes with the *defined* semantics so that printed
  formulas and axiom instances stay readable;
* F3 — :class:`Believes` and :class:`Controls`;
* F4 — :class:`Sees`, :class:`Said`, :class:`Says`;
* F5 — :class:`SharedSecret` (``P <-X-> Q`` for a secret X);
* F6 — :class:`SharedKey`   (``P <-K-> Q`` for a key K);
* F7 — :class:`Fresh`;
* F8 — :class:`Has`.

Section 8's universal quantification over constants is provided by
:class:`ForAll`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import TermError
from repro.terms.atoms import Parameter, PrimitiveProposition
from repro.terms.base import Message
from repro.terms.messages import (
    _require_key_like,
    _require_message,
    _require_principal_like,
)


@dataclass(frozen=True, eq=False)
class Formula(Message):
    """A formula of ``F_T``.  Every formula is a message (condition M1)."""


def _require_formula(value: object, role: str) -> None:
    if not isinstance(value, Formula):
        raise TermError(f"{role} must be a Formula, got {value!r}")


# ---------------------------------------------------------------------------
# Propositional part (F1, F2)
# ---------------------------------------------------------------------------


@dataclass(frozen=True, eq=False)
class Prim(Formula):
    """A primitive proposition used as a formula (F1)."""

    atom: PrimitiveProposition

    def __post_init__(self) -> None:
        if not isinstance(self.atom, PrimitiveProposition):
            raise TermError(f"Prim needs a PrimitiveProposition, got {self.atom!r}")

    def __str__(self) -> str:
        return self.atom.name


@dataclass(frozen=True, eq=False)
class Truth(Formula):
    """The constant true formula.

    Section 7 uses ``P_i believes ... P_i believes true`` to pad
    assumption strata; a first-class constant keeps that construction
    direct.
    """

    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True, eq=False)
class Not(Formula):
    """Negation (F2)."""

    body: Formula

    def __post_init__(self) -> None:
        _require_formula(self.body, "Not body")

    def __str__(self) -> str:
        return f"~{_wrap(self.body)}"


@dataclass(frozen=True, eq=False)
class And(Formula):
    """Binary conjunction (F2)."""

    left: Formula
    right: Formula

    def __post_init__(self) -> None:
        _require_formula(self.left, "And left")
        _require_formula(self.right, "And right")

    def __str__(self) -> str:
        return f"{_wrap(self.left)} & {_wrap(self.right)}"


@dataclass(frozen=True, eq=False)
class Or(Formula):
    """Disjunction; definable as ``~(~p & ~q)`` and given that semantics."""

    left: Formula
    right: Formula

    def __post_init__(self) -> None:
        _require_formula(self.left, "Or left")
        _require_formula(self.right, "Or right")

    def __str__(self) -> str:
        return f"{_wrap(self.left)} | {_wrap(self.right)}"


@dataclass(frozen=True, eq=False)
class Implies(Formula):
    """Implication; definable as ``~(p & ~q)`` and given that semantics."""

    antecedent: Formula
    consequent: Formula

    def __post_init__(self) -> None:
        _require_formula(self.antecedent, "Implies antecedent")
        _require_formula(self.consequent, "Implies consequent")

    def __str__(self) -> str:
        return f"{_wrap(self.antecedent)} -> {_wrap(self.consequent)}"


@dataclass(frozen=True, eq=False)
class Iff(Formula):
    """Biconditional; definable from ``&`` and ``->``."""

    left: Formula
    right: Formula

    def __post_init__(self) -> None:
        _require_formula(self.left, "Iff left")
        _require_formula(self.right, "Iff right")

    def __str__(self) -> str:
        return f"{_wrap(self.left)} <-> {_wrap(self.right)}"


# ---------------------------------------------------------------------------
# Modal and authentication constructs (F3-F8)
# ---------------------------------------------------------------------------


@dataclass(frozen=True, eq=False)
class Believes(Formula):
    """``P believes φ`` (F3).

    Belief is resource-bounded defensible knowledge: φ holds at every
    point P considers possible, where possibility is restricted to the
    *good runs* consistent with P's preconceptions and local states are
    compared after hiding unreadable ciphertexts (Section 6).
    """

    principal: Message
    body: Formula

    def __post_init__(self) -> None:
        _require_principal_like(self.principal, "Believes principal")
        _require_formula(self.body, "Believes body")

    def __str__(self) -> str:
        return f"{self.principal} believes {_wrap(self.body)}"


@dataclass(frozen=True, eq=False)
class Controls(Formula):
    """``P controls φ`` (F3): P has jurisdiction over φ.

    Semantically (Section 6): at every time ``k' >= 0`` of the run, if P
    says φ then φ holds.  Because of the quantification over the whole
    epoch this is *more* than shorthand for ``P says φ -> φ``.
    """

    principal: Message
    body: Formula

    def __post_init__(self) -> None:
        _require_principal_like(self.principal, "Controls principal")
        _require_formula(self.body, "Controls body")

    def __str__(self) -> str:
        return f"{self.principal} controls {_wrap(self.body)}"


@dataclass(frozen=True, eq=False)
class Sees(Formula):
    """``P sees X`` (F4): P received a message with readable component X."""

    principal: Message
    message: Message

    def __post_init__(self) -> None:
        _require_principal_like(self.principal, "Sees principal")
        _require_message(self.message, "Sees message")

    def __str__(self) -> str:
        return f"{self.principal} sees {_wrap_msg(self.message)}"


@dataclass(frozen=True, eq=False)
class Said(Formula):
    """``P said X`` (F4): P sent a message containing the component X.

    The components P is "considered to have said" are computed by
    ``said_submsgs`` with the key set P held *when it sent* the message
    (Section 6) — acquiring a key later does not retroactively commit P
    to ciphertext contents.
    """

    principal: Message
    message: Message

    def __post_init__(self) -> None:
        _require_principal_like(self.principal, "Said principal")
        _require_message(self.message, "Said message")

    def __str__(self) -> str:
        return f"{self.principal} said {_wrap_msg(self.message)}"


@dataclass(frozen=True, eq=False)
class Says(Formula):
    """``P says X`` (F4): P sent X *in the present epoch* (Section 3.2).

    This construct lets axiom A20 express freshness directly ("a fresh
    message must have been recently said") and lets jurisdiction (A15)
    avoid the ill-defined honesty assumption.
    """

    principal: Message
    message: Message

    def __post_init__(self) -> None:
        _require_principal_like(self.principal, "Says principal")
        _require_message(self.message, "Says message")

    def __str__(self) -> str:
        return f"{self.principal} says {_wrap_msg(self.message)}"


@dataclass(frozen=True, eq=False)
class SharedSecret(Formula):
    """``P <-X-> Q`` (F5): X is a shared secret between P and Q.

    Semantically: at every time of the run, any principal R other than P
    and Q that said a message combined with X had previously *seen* that
    combination — i.e. only P and Q originate X-combinations.
    """

    left: Message
    secret: Message
    right: Message

    def __post_init__(self) -> None:
        _require_principal_like(self.left, "SharedSecret left principal")
        _require_message(self.secret, "SharedSecret secret")
        _require_principal_like(self.right, "SharedSecret right principal")

    def __str__(self) -> str:
        return f"{self.left} <-{self.secret}-> {self.right} (secret)"


@dataclass(frozen=True, eq=False)
class SharedKey(Formula):
    """``P <-K-> Q`` (F6): K is a shared key for P and Q.

    Following Section 3.1's analysis, goodness of a key is defined by
    *who encrypts with it*, not by secrecy: P and Q are the only
    principals encrypting messages with K; others may relay copies.
    """

    left: Message
    key: Message
    right: Message

    def __post_init__(self) -> None:
        _require_principal_like(self.left, "SharedKey left principal")
        _require_key_like(self.key, "SharedKey key")
        _require_principal_like(self.right, "SharedKey right principal")

    def __str__(self) -> str:
        return f"{self.left} <-{self.key}-> {self.right}"


@dataclass(frozen=True, eq=False)
class PublicKeyOf(Formula):
    """``pk(P, K)`` — K is P's public key (BAN89's "→K P").

    The public-key analogue of F6: semantically, P is the only
    principal *signing* with the private partner K⁻¹ (others may relay
    copies of signatures), which is what the signature message-meaning
    axiom needs.
    """

    principal: Message
    key: Message

    def __post_init__(self) -> None:
        _require_principal_like(self.principal, "PublicKeyOf principal")
        _require_key_like(self.key, "PublicKeyOf key")

    def __str__(self) -> str:
        return f"pk({self.principal}, {self.key})"


@dataclass(frozen=True, eq=False)
class Fresh(Formula):
    """``fresh(X)`` (F7): X is not a submessage of any past message."""

    message: Message

    def __post_init__(self) -> None:
        _require_message(self.message, "Fresh message")

    def __str__(self) -> str:
        return f"fresh({self.message})"


@dataclass(frozen=True, eq=False)
class Has(Formula):
    """``P has K`` (F8): the key K is in P's key set.

    New in the reformulated logic (Section 3.1): possession of a key is
    decoupled from beliefs about the key's quality.  Required by A8 to
    decrypt and by A11 to *know* what one is seeing.
    """

    principal: Message
    key: Message

    def __post_init__(self) -> None:
        _require_principal_like(self.principal, "Has principal")
        _require_key_like(self.key, "Has key")

    def __str__(self) -> str:
        return f"{self.principal} has {self.key}"


@dataclass(frozen=True, eq=False)
class ForAll(Formula):
    """``∀x. φ`` — universal quantification over constants (Section 8).

    The bound variable is a :class:`Parameter`; the quantifier ranges
    over all constants of the parameter's sort in the system's
    vocabulary.  "Since the set of all keys is typically finite in
    practice, this is equivalent to a finite conjunction of formulas
    already in our language."
    """

    variable: Parameter
    body: Formula

    def __post_init__(self) -> None:
        if not isinstance(self.variable, Parameter):
            raise TermError(f"ForAll variable must be a Parameter, got {self.variable!r}")
        _require_formula(self.body, "ForAll body")

    def __str__(self) -> str:
        return f"forall {self.variable.name}:{self.variable.value_sort}. {_wrap(self.body)}"


# ---------------------------------------------------------------------------
# Helper constructors
# ---------------------------------------------------------------------------

TRUE = Truth()
FALSE = Not(TRUE)


def conj(formulas: Sequence[Formula]) -> Formula:
    """Right-associated conjunction of a non-empty sequence of formulas."""
    if not formulas:
        return TRUE
    result = formulas[-1]
    _require_formula(result, "conj operand")
    for formula in reversed(formulas[:-1]):
        result = And(formula, result)
    return result


def disj(formulas: Sequence[Formula]) -> Formula:
    """Right-associated disjunction of a sequence of formulas."""
    if not formulas:
        return FALSE
    result = formulas[-1]
    _require_formula(result, "disj operand")
    for formula in reversed(formulas[:-1]):
        result = Or(formula, result)
    return result


def implies_chain(premises: Iterable[Formula], conclusion: Formula) -> Formula:
    """Build ``p1 & ... & pn -> conclusion`` (with no premises: conclusion)."""
    premises = tuple(premises)
    if not premises:
        return conclusion
    return Implies(conj(premises), conclusion)


def believes_chain(principals: Sequence[Message], body: Formula) -> Formula:
    """Build ``P1 believes P2 believes ... Pk believes body``."""
    result = body
    for principal in reversed(principals):
        result = Believes(principal, result)
    return result


def belief_depth(formula: Formula) -> int:
    """Length of the leading ``believes``-prefix of a formula.

    Section 7 stratifies initial assumptions by their "levels of
    belief": ``P_i believes ... P_k believes p`` with p belief-free has
    depth equal to the number of leading believes operators.
    """
    depth = 0
    while isinstance(formula, Believes):
        depth += 1
        formula = formula.body
    return depth


def strip_beliefs(formula: Formula) -> tuple[tuple[Message, ...], Formula]:
    """Split a formula into its believes-prefix and its body."""
    prefix: list[Message] = []
    while isinstance(formula, Believes):
        prefix.append(formula.principal)
        formula = formula.body
    return tuple(prefix), formula


# ---------------------------------------------------------------------------
# Printing support
# ---------------------------------------------------------------------------

_ATOMIC_TYPES: tuple[type, ...] = ()


def _is_atomic_for_printing(formula: Message) -> bool:
    return isinstance(
        formula,
        (Prim, Truth, Fresh, Has, SharedKey, SharedSecret, PublicKeyOf),
    ) or not isinstance(formula, Formula)


def _wrap(formula: Formula) -> str:
    """Parenthesize non-atomic subformulas when printing."""
    text = str(formula)
    if _is_atomic_for_printing(formula):
        return text
    return f"({text})"


def _wrap_msg(message: Message) -> str:
    """Parenthesize formulas appearing in message position."""
    if isinstance(message, Formula) and not _is_atomic_for_printing(message):
        return f"({message})"
    return str(message)
