"""The term language of the logic: messages ``M_T`` and formulas ``F_T``.

This package implements Section 4.1 of Abadi & Tuttle (PODC '91): a
two-sorted language in which every formula is a message, so idealized
protocols can send formulas inside messages.

Quick tour::

    >>> from repro.terms import Vocabulary, parse_formula
    >>> vocab = Vocabulary()
    >>> A, B, S = vocab.principals("A", "B", "S")
    >>> Kab, Kas = vocab.keys("Kab", "Kas")
    >>> f = parse_formula("A believes A <-Kab-> B", vocab)
    >>> str(f)
    'A believes A <-Kab-> B'
"""

from repro.terms.atoms import (
    Atom,
    Key,
    Nonce,
    Opaque,
    Parameter,
    PrimitiveProposition,
    Principal,
    PrivateKey,
    PublicKey,
    Sort,
    decryption_key,
)
from repro.terms.base import Message
from repro.terms.formulas import (
    FALSE,
    TRUE,
    And,
    Believes,
    Controls,
    ForAll,
    Formula,
    Fresh,
    Has,
    Iff,
    Implies,
    Not,
    Or,
    Prim,
    PublicKeyOf,
    Said,
    Says,
    Sees,
    SharedKey,
    SharedSecret,
    Truth,
    belief_depth,
    believes_chain,
    conj,
    disj,
    implies_chain,
    strip_beliefs,
)
from repro.terms.messages import (
    Combined,
    Encrypted,
    Forwarded,
    Group,
    combined,
    encrypted,
    flatten,
    forwarded,
    group,
    group_parts,
)
from repro.terms.ops import (
    children,
    constants_of_sort,
    depth,
    free_parameters,
    has_belief_under_negation,
    is_ground,
    is_negation_free,
    rebuild,
    size,
    submessages,
    submessages_of_all,
    substitute,
    transform,
    walk,
)
from repro.terms.parser import parse_formula, parse_message
from repro.terms.vocabulary import Vocabulary

__all__ = [
    "Atom",
    "Key",
    "Nonce",
    "Opaque",
    "Parameter",
    "PrimitiveProposition",
    "Principal",
    "PrivateKey",
    "PublicKey",
    "decryption_key",
    "Sort",
    "Message",
    "FALSE",
    "TRUE",
    "And",
    "Believes",
    "Controls",
    "ForAll",
    "Formula",
    "Fresh",
    "Has",
    "Iff",
    "Implies",
    "Not",
    "Or",
    "Prim",
    "PublicKeyOf",
    "Said",
    "Says",
    "Sees",
    "SharedKey",
    "SharedSecret",
    "Truth",
    "belief_depth",
    "believes_chain",
    "conj",
    "disj",
    "implies_chain",
    "strip_beliefs",
    "Combined",
    "Encrypted",
    "Forwarded",
    "Group",
    "combined",
    "encrypted",
    "flatten",
    "forwarded",
    "group",
    "group_parts",
    "children",
    "constants_of_sort",
    "depth",
    "free_parameters",
    "has_belief_under_negation",
    "is_ground",
    "is_negation_free",
    "rebuild",
    "size",
    "submessages",
    "submessages_of_all",
    "substitute",
    "transform",
    "walk",
    "parse_formula",
    "parse_message",
    "Vocabulary",
]
