"""Hash-consing for the term language (maximal structural sharing).

Every term constructor routes through :class:`InternMeta`, which keeps
one canonical instance per structurally-distinct term in a weak intern
table.  The payoff, for a symbolic workload whose memo tables all key
on terms, is threefold:

* **O(1) hashing** — each node carries a precomputed ``_hash``, so a
  dict lookup on a deep formula no longer re-walks the tree;
* **identity-fast equality** — within a context, structurally equal
  terms *are* the same object, so ``==`` is usually a pointer compare;
* **O(1) structural memoization** — derived attributes (submessage
  sets, free parameters, sizes) can be cached directly on the canonical
  node (:mod:`repro.terms.ops`), shared by every formula that mentions
  the term.

This is the same technique industrial symbolic engines use for their
term DAGs (hash-consed facts in multiset-rewriting checkers, shared
BDD nodes in model checkers).

The table is owned by the current :class:`repro.context.EngineContext`
— one table per session, the process-default context preserving the
old one-table-per-process behaviour.  Terms built under different
contexts are distinct canonical instances that still compare (and
hash) structurally equal: ``Message.__eq__``/``__hash__`` never depend
on canonicity, only profit from it.

Interning survives pickling: ``Message.__reduce__`` rebuilds terms
through their constructors, so terms arriving from a worker process
(the parallel soundness sweep) are re-interned into the *receiving*
context's table — and re-hashed, which matters because Python string
hashing is per-process randomized.

The table holds *weak* references: terms no longer referenced anywhere
else are garbage-collected normally, so long-lived processes do not
accumulate every term they ever built.  ``repro.perf.clear_caches()``
empties the current context's table explicitly.
"""

from __future__ import annotations

from dataclasses import fields
from typing import Any

from repro import context as _context
from repro import perf

#: Per-class tuple of field names, computed once per dataclass.
#: Immutable class metadata, not session state — deliberately global.
_FIELD_NAMES: dict[type, tuple[str, ...]] = {}

perf.register_cache(
    "intern",
    lambda: _context.current().intern_table.clear(),
    lambda: len(_context.current().intern_table),
)


def _field_names(cls: type) -> tuple[str, ...]:
    names = _FIELD_NAMES.get(cls)
    if names is None:
        names = tuple(f.name for f in fields(cls))
        _FIELD_NAMES[cls] = names
    return names


class InternMeta(type):
    """Metaclass interning every instance of the term dataclasses.

    ``cls(...)`` constructs (and validates, via ``__post_init__``) a
    candidate instance, then returns the canonical instance for its
    structural key in the current context's table, creating one if
    needed.  The structural hash is computed exactly once, here, and
    stored on the instance.
    """

    def __call__(cls, *args: Any, **kwargs: Any) -> Any:
        ctx = _context.current()
        table = ctx.intern_table
        counters = ctx.counters
        key = None
        if not kwargs and len(args) == len(_field_names(cls)):
            # All fields given positionally: the structural key is just
            # the argument tuple (no __post_init__ rewrites fields), so
            # a hit can skip constructing-and-discarding a candidate.
            key = (cls, *args)
            try:
                canonical = table.get(key)
            except TypeError:  # unhashable argument: take the slow path
                key = None
            else:
                if canonical is not None:
                    counters["intern.hit"] = counters.get("intern.hit", 0) + 1
                    return canonical
        obj = super().__call__(*args, **kwargs)
        if key is None:
            key = (cls, *(getattr(obj, name) for name in _field_names(cls)))
            canonical = table.get(key)
            if canonical is not None:
                counters["intern.hit"] = counters.get("intern.hit", 0) + 1
                return canonical
        counters["intern.miss"] = counters.get("intern.miss", 0) + 1
        object.__setattr__(obj, "_hash", hash(key))
        table[key] = obj
        return obj


def intern_key(obj: Any) -> tuple:
    """The structural identity of a term: ``(class, *field values)``."""
    cls = type(obj)
    return (cls, *(getattr(obj, name) for name in _field_names(cls)))


def reconstruct(cls: type, values: tuple) -> Any:
    """Pickle helper: rebuild (and so re-intern) a term from its fields."""
    return cls(*values)


def intern_stats() -> dict[str, int]:
    """Size of the current context's intern table plus its counters."""
    ctx = _context.current()
    return {
        "size": len(ctx.intern_table),
        "hits": ctx.counters.get("intern.hit", 0),
        "misses": ctx.counters.get("intern.miss", 0),
    }
