"""Hash-consing for the term language (maximal structural sharing).

Every term constructor routes through :class:`InternMeta`, which keeps
one canonical instance per structurally-distinct term in a weak intern
table.  The payoff, for a symbolic workload whose memo tables all key
on terms, is threefold:

* **O(1) hashing** — each node carries a precomputed ``_hash``, so a
  dict lookup on a deep formula no longer re-walks the tree;
* **identity-fast equality** — within a process, structurally equal
  terms *are* the same object, so ``==`` is usually a pointer compare;
* **O(1) structural memoization** — derived attributes (submessage
  sets, free parameters, sizes) can be cached directly on the canonical
  node (:mod:`repro.terms.ops`), shared by every context that mentions
  the term.

This is the same technique industrial symbolic engines use for their
term DAGs (hash-consed facts in multiset-rewriting checkers, shared
BDD nodes in model checkers).

Interning survives pickling: ``Message.__reduce__`` rebuilds terms
through their constructors, so terms arriving from a worker process
(the parallel soundness sweep) are re-interned — and re-hashed, which
matters because Python string hashing is per-process randomized.

The table holds *weak* references: terms no longer referenced anywhere
else are garbage-collected normally, so long-lived processes do not
accumulate every term they ever built.  ``repro.perf.clear_caches()``
empties the table explicitly.
"""

from __future__ import annotations

import weakref
from dataclasses import fields
from typing import Any

from repro import perf

#: The global intern table: structural key -> canonical instance.
_TABLE: "weakref.WeakValueDictionary[tuple, Any]" = weakref.WeakValueDictionary()

#: Per-class tuple of field names, computed once per dataclass.
_FIELD_NAMES: dict[type, tuple[str, ...]] = {}

perf.register_cache("intern", _TABLE.clear, lambda: len(_TABLE))


def _field_names(cls: type) -> tuple[str, ...]:
    names = _FIELD_NAMES.get(cls)
    if names is None:
        names = tuple(f.name for f in fields(cls))
        _FIELD_NAMES[cls] = names
    return names


class InternMeta(type):
    """Metaclass interning every instance of the term dataclasses.

    ``cls(...)`` constructs (and validates, via ``__post_init__``) a
    candidate instance, then returns the canonical instance for its
    structural key, creating one if needed.  The structural hash is
    computed exactly once, here, and stored on the instance.
    """

    def __call__(cls, *args: Any, **kwargs: Any) -> Any:
        obj = super().__call__(*args, **kwargs)
        key = (cls, *(getattr(obj, name) for name in _field_names(cls)))
        canonical = _TABLE.get(key)
        if canonical is not None:
            perf.count("intern.hit")
            return canonical
        perf.count("intern.miss")
        object.__setattr__(obj, "_hash", hash(key))
        _TABLE[key] = obj
        return obj


def intern_key(obj: Any) -> tuple:
    """The structural identity of a term: ``(class, *field values)``."""
    cls = type(obj)
    return (cls, *(getattr(obj, name) for name in _field_names(cls)))


def reconstruct(cls: type, values: tuple) -> Any:
    """Pickle helper: rebuild (and so re-intern) a term from its fields."""
    return cls(*values)


def intern_stats() -> dict[str, int]:
    """Size of the intern table plus its hit/miss counters."""
    return {
        "size": len(_TABLE),
        "hits": perf.counters.get("intern.hit", 0),
        "misses": perf.counters.get("intern.miss", 0),
    }
