"""Structural operations on messages and formulas.

This module provides the generic traversal machinery everything else
builds on: children/rebuild, the ``submsgs`` closure used by the
freshness semantics (Section 6), parameter substitution (Section 8),
and the syntactic restriction I1 of Section 7.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Mapping

from repro import perf
from repro.errors import TermError
from repro.terms.atoms import Atom, Key, Nonce, Opaque, Parameter, Principal, Sort
from repro.terms.base import Message
from repro.terms.formulas import (
    And,
    Believes,
    Controls,
    ForAll,
    Formula,
    Fresh,
    Has,
    Iff,
    Implies,
    Not,
    Or,
    Prim,
    PublicKeyOf,
    Said,
    Says,
    Sees,
    SharedKey,
    SharedSecret,
    Truth,
)
from repro.terms.messages import Combined, Encrypted, Forwarded, Group


def children(message: Message) -> tuple[Message, ...]:
    """Return the immediate structural children of a term, in order.

    Every ``Message``-typed field counts as a child, including
    encryption keys, secrets, from fields, and principal positions.
    The freshness closure :func:`submessages` and the parameter
    machinery both rely on this being exhaustive.
    """
    match message:
        case Atom() | Parameter() | Opaque() | Truth():
            return ()
        case Group(parts):
            return parts
        case Encrypted(body, key, sender):
            return (body, key, sender)
        case Combined(body, secret, sender):
            return (body, secret, sender)
        case Forwarded(body):
            return (body,)
        case Prim(atom):
            return (atom,)
        case Not(body):
            return (body,)
        case And(left, right) | Or(left, right) | Iff(left, right):
            return (left, right)
        case Implies(antecedent, consequent):
            return (antecedent, consequent)
        case Believes(principal, body) | Controls(principal, body):
            return (principal, body)
        case Sees(principal, msg) | Said(principal, msg) | Says(principal, msg):
            return (principal, msg)
        case SharedSecret(left, secret, right):
            return (left, secret, right)
        case SharedKey(left, key, right):
            return (left, key, right)
        case Fresh(msg):
            return (msg,)
        case Has(principal, key):
            return (principal, key)
        case PublicKeyOf(principal, key):
            return (principal, key)
        case ForAll(variable, body):
            return (variable, body)
        case _:
            raise TermError(f"unknown term node: {message!r}")


def rebuild(message: Message, new_children: tuple[Message, ...]) -> Message:
    """Reconstruct a term of the same shape with replacement children."""
    cls = type(message)
    match message:
        case Atom() | Parameter() | Opaque() | Truth():
            if new_children:
                raise TermError(f"{cls.__name__} takes no children")
            return message
        case Group():
            return Group(tuple(new_children))
        case _:
            return cls(*new_children)


def transform(message: Message, fn: Callable[[Message], Message | None]) -> Message:
    """Bottom-up rewrite: apply ``fn`` at every node, child-first.

    ``fn`` returns a replacement node or ``None`` to keep the
    (child-rewritten) node unchanged.
    """
    kids = children(message)
    new_kids = tuple(transform(kid, fn) for kid in kids)
    node = message if new_kids == kids else rebuild(message, new_kids)
    replacement = fn(node)
    return node if replacement is None else replacement


def walk(message: Message) -> Iterator[Message]:
    """Yield every node of the term, pre-order."""
    yield message
    for kid in children(message):
        yield from walk(kid)


def submessages(message: Message) -> frozenset[Message]:
    """The set of all submessages of a message (Section 6, ``submsgs``).

    The paper defines ``submsgs`` by induction in the full version; we
    take the uniform closure over *all* structural children.  This is
    the relation against which ``fresh`` is evaluated: X is fresh at a
    point iff X is not in ``submsgs`` of any message sent by time 0.
    The uniform choice validates the lifting axioms A16-A19 (X is a
    submessage of any tuple, ciphertext, combination, or forwarding
    containing it) and is observer-independent, as freshness must be.

    Memoized on the interned node: terms are immutable and hash-consed,
    so the closure is computed once per structurally-distinct term and
    shared by every context (and every parent term) that mentions it.
    """
    cached = getattr(message, "_submsgs", None)
    if cached is not None:
        perf.count("ops.submessages.hit")
        return cached
    perf.count("ops.submessages.miss")
    kids = children(message)
    if not kids:
        cached = frozenset((message,))
    else:
        out: set[Message] = {message}
        for kid in kids:
            out.update(submessages(kid))
        cached = frozenset(out)
    object.__setattr__(message, "_submsgs", cached)
    return cached


def submessages_of_all(messages: Iterable[Message]) -> frozenset[Message]:
    """Union of :func:`submessages` over a collection of messages."""
    out: set[Message] = set()
    for message in messages:
        out.update(submessages(message))
    return frozenset(out)


def size(message: Message) -> int:
    """Number of nodes in the term (tree size, memoized per node)."""
    cached = getattr(message, "_size", None)
    if cached is not None:
        return cached
    cached = 1 + sum(size(kid) for kid in children(message))
    object.__setattr__(message, "_size", cached)
    return cached


def depth(message: Message) -> int:
    """Height of the term (atoms have depth 1, memoized per node)."""
    cached = getattr(message, "_depth", None)
    if cached is not None:
        return cached
    kids = children(message)
    cached = 1 if not kids else 1 + max(depth(kid) for kid in kids)
    object.__setattr__(message, "_depth", cached)
    return cached


# ---------------------------------------------------------------------------
# Parameters (Section 8)
# ---------------------------------------------------------------------------


_NO_PARAMETERS: frozenset[Parameter] = frozenset()


def free_parameters(message: Message) -> frozenset[Parameter]:
    """Parameters occurring free in the term (ForAll binds its variable).

    Memoized on the interned node — the evaluator consults this before
    every evaluation, so for ground formulas (the common case in the
    soundness sweep) the answer must be O(1), not a term walk.
    """
    cached = getattr(message, "_free_params", None)
    if cached is not None:
        perf.count("ops.free_parameters.hit")
        return cached
    perf.count("ops.free_parameters.miss")
    if isinstance(message, Parameter):
        cached = frozenset((message,))
    elif isinstance(message, ForAll):
        cached = free_parameters(message.body) - {message.variable}
    else:
        out: set[Parameter] = set()
        for kid in children(message):
            out.update(free_parameters(kid))
        cached = frozenset(out) if out else _NO_PARAMETERS
    object.__setattr__(message, "_free_params", cached)
    return cached


def is_ground(message: Message) -> bool:
    """True iff the term contains no free parameters."""
    return not free_parameters(message)


def substitute(message: Message, assignment: Mapping[Parameter, Message]) -> Message:
    """Replace free parameters by their assigned values.

    Values must match the parameter's sort (a key-sorted parameter can
    only be replaced by a ``Key`` or another key-sorted parameter, and
    so on); this preserves well-formedness of the surrounding term.
    Bound variables of ``ForAll`` are respected.
    """
    for parameter, value in assignment.items():
        _check_sort(parameter, value)

    def apply(node: Message, bound: frozenset[Parameter]) -> Message:
        if isinstance(node, Parameter):
            if node in bound or node not in assignment:
                return node
            return assignment[node]
        if isinstance(node, ForAll):
            inner_bound = bound | {node.variable}
            new_body = apply(node.body, inner_bound)
            if new_body is node.body:
                return node
            return ForAll(node.variable, new_body)  # type: ignore[arg-type]
        kids = children(node)
        new_kids = tuple(apply(kid, bound) for kid in kids)
        if new_kids == kids:
            return node
        return rebuild(node, new_kids)

    return apply(message, frozenset())


def _check_sort(parameter: Parameter, value: Message) -> None:
    expected = parameter.value_sort
    if isinstance(value, Parameter):
        actual = value.value_sort
    elif isinstance(value, Principal):
        actual = Sort.PRINCIPAL
    elif isinstance(value, Key):
        actual = Sort.KEY
    elif isinstance(value, Nonce):
        actual = Sort.NONCE
    else:
        raise TermError(
            f"parameter {parameter.name} cannot take non-constant value {value!r}"
        )
    if actual is not expected:
        raise TermError(
            f"parameter {parameter.name} has sort {expected}, got {actual} value {value}"
        )


def constants_of_sort(message: Message, sort: Sort) -> frozenset[Atom]:
    """All constants of a given sort occurring anywhere in the term."""
    wanted: type
    if sort is Sort.PRINCIPAL:
        wanted = Principal
    elif sort is Sort.KEY:
        wanted = Key
    elif sort is Sort.NONCE:
        wanted = Nonce
    else:
        raise TermError(f"unsupported constant sort for collection: {sort}")
    return frozenset(node for node in walk(message) if isinstance(node, wanted))


# ---------------------------------------------------------------------------
# Restriction I1 (Section 7) and annotation-language stability heuristics
# ---------------------------------------------------------------------------

_NEGATIVE_CONTEXTS = (Not, Or, Implies, Iff)


def has_belief_under_negation(formula: Formula) -> bool:
    """Check restriction I1: no ``believes`` within the scope of negation.

    Because ``|``, ``->`` and ``<->`` are *defined* in terms of negation
    (Section 4.1), a belief occurring anywhere inside those connectives
    also counts as being within the scope of a negation symbol; we check
    the conservative reading.
    """

    def contains_belief(node: Message) -> bool:
        return any(isinstance(sub, Believes) for sub in walk(node))

    def scan(node: Message) -> bool:
        if isinstance(node, _NEGATIVE_CONTEXTS):
            if contains_belief(node):
                return True
            return False
        return any(scan(kid) for kid in children(node))

    return scan(formula)


def is_negation_free(formula: Formula) -> bool:
    """True iff the formula uses no negation-derived connective at all.

    This is the simple linguistic restriction Section 4.3 suggests for
    annotation formulas ("avoiding the use of the belief operator in the
    scope of negation usually suffices"); negation-free formulas built
    from the authentication constructs are stable along protocol runs.
    """
    return not any(isinstance(node, _NEGATIVE_CONTEXTS) for node in walk(formula))
