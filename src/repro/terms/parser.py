"""A recursive-descent parser for the surface syntax of ``M_T``/``F_T``.

The surface syntax mirrors the printed (``str``) form of terms, so
``parse_formula(str(f), vocab) == f`` for every formula over declared
constants — a property the test suite checks exhaustively with
hypothesis.

Grammar sketch (formulas)::

    formula  := iff
    iff      := imp ('<->' imp)*
    imp      := or ('->' imp)?                 # right-associative
    or       := and ('|' and)*
    and      := unary ('&' unary)*
    unary    := '~' unary | quantified | primary
    quantified := 'forall' NAME ':' SORT '.' unary
    primary  := 'true' | 'fresh' '(' message ')' | '(' formula ')'
              | term ( 'believes' unary | 'controls' unary
                     | 'sees' message | 'said' message | 'says' message
                     | 'has' term
                     | '<-' term '->' term [ '(' 'secret' ')' ] )?

and (messages)::

    message  := formula-looking input parsed as a formula, or:
    term     := NAME | '?' NAME
              | '(' message (',' message)* ')'
              | '{' message '}' '_' term 'from' term
              | '<' message '>' '_' term 'from' term
              | "'" message "'"

Identifiers resolve through a :class:`~repro.terms.vocabulary.Vocabulary`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import ParseError
from repro.terms.atoms import Key, Parameter, PrimitiveProposition, Sort
from repro.terms.base import Message
from repro.terms.formulas import (
    TRUE,
    And,
    Believes,
    Controls,
    ForAll,
    Formula,
    Fresh,
    Has,
    Iff,
    Implies,
    Not,
    Or,
    Prim,
    PublicKeyOf,
    Said,
    Says,
    Sees,
    SharedKey,
    SharedSecret,
)
from repro.terms.messages import Combined, Encrypted, Forwarded, Group
from repro.terms.vocabulary import Vocabulary

_SYMBOLS = ("<->", "->", "<-", "(", ")", "{", "}", ",", "~", "&", "|", "_",
            "'", ".", ":", "?", "<", ">")

_SORT_NAMES = {
    "principal": Sort.PRINCIPAL,
    "key": Sort.KEY,
    "nonce": Sort.NONCE,
    "proposition": Sort.PROPOSITION,
}


@dataclass(frozen=True)
class _Token:
    kind: str  # "symbol", "name", or "end"
    text: str
    position: int


def _tokenize(text: str) -> Iterator[_Token]:
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        matched = False
        for symbol in _SYMBOLS:
            if text.startswith(symbol, i):
                yield _Token("symbol", symbol, i)
                i += len(symbol)
                matched = True
                break
        if matched:
            continue
        if ch.isalpha():
            j = i
            while j < n and text[j].isalnum():
                j += 1
            yield _Token("name", text[i:j], i)
            i = j
            continue
        raise ParseError(f"unexpected character {ch!r} at {i}", text, i)
    yield _Token("end", "", n)


class _Parser:
    """Single-use parser over a token stream."""

    def __init__(self, text: str, vocabulary: Vocabulary) -> None:
        self.text = text
        self.vocabulary = vocabulary
        self.tokens = list(_tokenize(text))
        self.index = 0
        self.bound: list[Parameter] = []

    # -- token plumbing ----------------------------------------------------

    def peek(self, offset: int = 0) -> _Token:
        return self.tokens[min(self.index + offset, len(self.tokens) - 1)]

    def advance(self) -> _Token:
        token = self.tokens[self.index]
        if token.kind != "end":
            self.index += 1
        return token

    def expect(self, text: str) -> _Token:
        token = self.peek()
        if token.text != text:
            raise ParseError(
                f"expected {text!r} but found {token.text or 'end of input'!r}"
                f" at {token.position}",
                self.text,
                token.position,
            )
        return self.advance()

    def at(self, text: str) -> bool:
        return self.peek().text == text

    def at_name(self, text: str) -> bool:
        token = self.peek()
        return token.kind == "name" and token.text == text

    def fail(self, message: str) -> ParseError:
        token = self.peek()
        return ParseError(f"{message} at {token.position}", self.text, token.position)

    # -- formulas ----------------------------------------------------------

    def parse_formula(self) -> Formula:
        return self._iff()

    def _iff(self) -> Formula:
        left = self._imp()
        while self.at("<->"):
            self.advance()
            right = self._imp()
            left = Iff(left, right)
        return left

    def _imp(self) -> Formula:
        left = self._or()
        if self.at("->"):
            self.advance()
            right = self._imp()
            return Implies(left, right)
        return left

    def _or(self) -> Formula:
        left = self._and()
        while self.at("|"):
            self.advance()
            left = Or(left, self._and())
        return left

    def _and(self) -> Formula:
        left = self._unary()
        while self.at("&"):
            self.advance()
            left = And(left, self._unary())
        return left

    def _unary(self) -> Formula:
        if self.at("~"):
            self.advance()
            return Not(self._unary())
        if self.at_name("forall"):
            return self._forall()
        return self._primary_formula()

    def _forall(self) -> Formula:
        self.advance()  # forall
        name_token = self.advance()
        if name_token.kind != "name":
            raise self.fail("expected a variable name after 'forall'")
        self.expect(":")
        sort_token = self.advance()
        sort = _SORT_NAMES.get(sort_token.text)
        if sort is None:
            raise self.fail(f"unknown sort {sort_token.text!r}")
        self.expect(".")
        variable = Parameter(name_token.text, sort)
        self.bound.append(variable)
        try:
            body = self._unary()
        finally:
            self.bound.pop()
        return ForAll(variable, body)

    def _primary_formula(self) -> Formula:
        if self.at_name("true"):
            self.advance()
            return TRUE
        if self.at_name("fresh"):
            self.advance()
            self.expect("(")
            message = self.parse_message()
            self.expect(")")
            return Fresh(message)
        if self.at_name("pk"):
            self.advance()
            self.expect("(")
            principal = self._term()
            self.expect(",")
            key = self._term()
            self.expect(")")
            return PublicKeyOf(principal, key)
        if self.at("("):
            # Could be a parenthesized formula, possibly followed by a
            # formula postfix if it denotes a principal-valued term; but a
            # parenthesized *formula* is the only case at formula level.
            saved = self.index
            self.advance()
            formula = self.parse_formula()
            self.expect(")")
            return formula
        term = self._term()
        return self._formula_postfix(term)

    def _formula_postfix(self, term: Message) -> Formula:
        token = self.peek()
        if token.kind == "name":
            if token.text == "believes":
                self.advance()
                return Believes(term, self._unary())
            if token.text == "controls":
                self.advance()
                return Controls(term, self._unary())
            if token.text == "sees":
                self.advance()
                return Sees(term, self.parse_message())
            if token.text == "said":
                self.advance()
                return Said(term, self.parse_message())
            if token.text == "says":
                self.advance()
                return Says(term, self.parse_message())
            if token.text == "has":
                self.advance()
                return Has(term, self._term())
        if self.at("<-"):
            self.advance()
            middle = self._term()
            self.expect("->")
            right = self._term()
            if self._try_secret_marker():
                return SharedSecret(term, middle, right)
            if self._is_key_like(middle):
                return SharedKey(term, middle, right)
            return SharedSecret(term, middle, right)
        if isinstance(term, PrimitiveProposition):
            return Prim(term)
        if isinstance(term, Formula):
            return term
        raise self.fail(f"term {term} is not a formula")

    def _try_secret_marker(self) -> bool:
        if (
            self.at("(")
            and self.peek(1).kind == "name"
            and self.peek(1).text == "secret"
            and self.peek(2).text == ")"
        ):
            self.advance()
            self.advance()
            self.advance()
            return True
        return False

    @staticmethod
    def _is_key_like(term: Message) -> bool:
        if isinstance(term, Key):
            return True
        return isinstance(term, Parameter) and term.value_sort is Sort.KEY

    # -- messages ----------------------------------------------------------

    def parse_message(self) -> Message:
        """Parse a message; formulas are messages, so try formula syntax."""
        saved = self.index
        try:
            return self.parse_formula()
        except ParseError:
            self.index = saved
        return self._term()

    def _term(self) -> Message:
        token = self.peek()
        if token.text == "(":
            return self._group_or_paren()
        if token.text == "{":
            return self._encrypted()
        if token.text == "<":
            return self._combined()
        if token.text == "'":
            self.advance()
            body = self.parse_message()
            self.expect("'")
            return Forwarded(body)
        if token.kind == "name" and token.text == "inv":
            self.advance()
            self.expect("(")
            inner = self._term()
            self.expect(")")
            from repro.terms.atoms import PrivateKey, PublicKey

            if isinstance(inner, PublicKey):
                return inner.partner
            if isinstance(inner, PrivateKey):
                return inner.partner
            raise self.fail(f"inv(...) needs a key-pair half, got {inner}")
        if token.text == "?":
            self.advance()
            name_token = self.advance()
            if name_token.kind != "name":
                raise self.fail("expected a parameter name after '?'")
            for bound in reversed(self.bound):
                if bound.name == name_token.text:
                    return bound
            symbol = self.vocabulary.lookup(name_token.text)
            if not isinstance(symbol, Parameter):
                raise self.fail(f"{name_token.text!r} is not a parameter")
            return symbol
        if token.kind == "name":
            self.advance()
            return self.vocabulary.lookup(token.text)
        raise self.fail(f"expected a term, found {token.text or 'end of input'!r}")

    def _group_or_paren(self) -> Message:
        self.expect("(")
        first = self.parse_message()
        parts = [first]
        while self.at(","):
            self.advance()
            parts.append(self.parse_message())
        self.expect(")")
        if len(parts) == 1:
            return parts[0]
        return Group(tuple(parts))

    def _encrypted(self) -> Message:
        self.expect("{")
        body = self.parse_message()
        self.expect("}")
        self.expect("_")
        key = self._term()
        if not self.at_name("from"):
            raise self.fail("encrypted message requires a 'from' field")
        self.advance()
        sender = self._term()
        return Encrypted(body, key, sender)

    def _combined(self) -> Message:
        self.expect("<")
        body = self.parse_message()
        self.expect(">")
        self.expect("_")
        secret = self._term()
        if not self.at_name("from"):
            raise self.fail("combined message requires a 'from' field")
        self.advance()
        sender = self._term()
        return Combined(body, secret, sender)

    # -- entry points ------------------------------------------------------

    def finish(self, value: Message) -> Message:
        token = self.peek()
        if token.kind != "end":
            raise ParseError(
                f"unexpected trailing input {token.text!r} at {token.position}",
                self.text,
                token.position,
            )
        return value


def parse_formula(text: str, vocabulary: Vocabulary) -> Formula:
    """Parse a formula of ``F_T`` over the given vocabulary."""
    parser = _Parser(text, vocabulary)
    formula = parser.parse_formula()
    parser.finish(formula)
    return formula


def parse_message(text: str, vocabulary: Vocabulary) -> Message:
    """Parse a message of ``M_T`` over the given vocabulary."""
    parser = _Parser(text, vocabulary)
    message = parser.parse_message()
    parser.finish(message)
    return message
