"""Primitive terms of the language (the set ``T`` of Section 4.1).

The paper assumes a set ``T`` of *primitive terms* containing disjoint
sets of constant symbols:

* **primitive propositions** (``PrimitiveProposition``) — the atoms of
  the formula sublanguage;
* **principals** (``Principal``) — the agents P, Q, R, S of a protocol;
* **shared keys** (``Key``) — encryption keys such as ``Kab``;
* remaining constants such as nonces and timestamps (``Nonce``).

Section 8 extends idealized protocols with *parameters*: distinguished
symbols whose value is determined per run (``Parameter``).  A parameter
carries a :class:`Sort` saying what kind of constant it ranges over.

Finally, :class:`Opaque` is the ``⊥`` placeholder used by the ``hide``
operation of Section 6 to replace ciphertexts a principal cannot read.
It is not part of the user-facing language; it only appears in hidden
local states.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import TermError
from repro.terms.base import Message


def _check_name(name: str) -> None:
    """Reject empty or non-identifier-ish constant names early.

    Names appear in printed formulas and in the parser's vocabulary, so
    insisting on non-empty, whitespace-free names keeps round-tripping
    unambiguous.
    """
    if not isinstance(name, str) or not name:
        raise TermError(f"constant name must be a non-empty string, got {name!r}")
    if any(ch.isspace() for ch in name):
        raise TermError(f"constant name may not contain whitespace: {name!r}")
    for forbidden in "(){},'\"<>~&|":
        if forbidden in name:
            raise TermError(f"constant name may not contain {forbidden!r}: {name!r}")


class Sort(enum.Enum):
    """The sort of a constant or parameter.

    Used by parameters (Section 8) and by universal quantification over
    constants, which ranges over all constants of one sort.
    """

    PRINCIPAL = "principal"
    KEY = "key"
    NONCE = "nonce"
    PROPOSITION = "proposition"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True, eq=False)
class Atom(Message):
    """Common base class for primitive terms (condition M2).

    Every atom is a message; primitive propositions are additionally
    formulas (condition F1) and are wrapped by
    :class:`repro.terms.formulas.Prim` when used as such.
    """

    name: str

    def __post_init__(self) -> None:
        _check_name(self.name)

    @property
    def sort(self) -> Sort:
        raise NotImplementedError

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, eq=False)
class Principal(Atom):
    """A principal constant: a person, computer, or server."""

    @property
    def sort(self) -> Sort:
        return Sort.PRINCIPAL


@dataclass(frozen=True, eq=False)
class Key(Atom):
    """A shared encryption key constant."""

    @property
    def sort(self) -> Sort:
        return Sort.KEY


@dataclass(frozen=True, eq=False)
class PublicKey(Key):
    """The public half of a key pair (the Section 8 / full-paper
    public-key extension, treated "as in [BAN89]").

    ``{X}_Kpub`` is public-key encryption: anyone holding the public
    key can build it, only the holder of the private partner can read
    it.  ``{X}_Kpriv`` is a signature: only the private-key holder can
    build it, anyone with the public partner can read it.
    """

    @property
    def partner(self) -> "PrivateKey":
        return PrivateKey(self.name)


@dataclass(frozen=True, eq=False)
class PrivateKey(Key):
    """The private half of a key pair; see :class:`PublicKey`.

    Prints as ``inv(K)`` (BAN89's K⁻¹) so the two halves are never
    ambiguous in rendered formulas.
    """

    @property
    def partner(self) -> "PublicKey":
        return PublicKey(self.name)

    def __str__(self) -> str:
        return f"inv({self.name})"


def decryption_key(key: "Key") -> "Key":
    """The key needed to *read* a ciphertext built with ``key``.

    Symmetric keys decrypt themselves; asymmetric ciphertexts are read
    with the partner half (private reads public-encrypted, public
    verifies private-signed).
    """
    if isinstance(key, (PublicKey, PrivateKey)):
        return key.partner
    return key


@dataclass(frozen=True, eq=False)
class Nonce(Atom):
    """A data constant: a nonce, timestamp, or other uninterpreted datum.

    The paper lumps these together as "the remaining constant symbols in
    T [which] represent things like nonces".
    """

    @property
    def sort(self) -> Sort:
        return Sort.NONCE


@dataclass(frozen=True, eq=False)
class PrimitiveProposition(Atom):
    """A primitive proposition constant (condition F1).

    Its truth at a point is given by the system's interpretation
    ``pi`` (Section 6).  Use :class:`repro.terms.formulas.Prim` to embed
    one into the formula language.
    """

    @property
    def sort(self) -> Sort:
        return Sort.PROPOSITION


@dataclass(frozen=True, eq=False)
class Parameter(Message):
    """A schematic symbol whose value is fixed per run (Section 8).

    An idealized protocol is written schematically: the symbol ``Kab``
    in the Kerberos idealization stands for whatever key the server
    generated in a particular run.  A run assigns a value (a constant of
    the matching sort) to each parameter; formulas are evaluated after
    substituting those values.
    """

    name: str
    value_sort: Sort

    def __post_init__(self) -> None:
        _check_name(self.name)
        if not isinstance(self.value_sort, Sort):
            raise TermError(f"parameter sort must be a Sort, got {self.value_sort!r}")

    def __str__(self) -> str:
        return f"?{self.name}"


@dataclass(frozen=True, eq=False)
class Opaque(Message):
    """The ``⊥`` placeholder for an unreadable ciphertext.

    ``hide`` (Section 6) replaces every encrypted submessage whose key a
    principal does not hold by this constant, so that indistinguishable
    local states do not leak the contents of messages the principal
    cannot decrypt.  All unreadable ciphertexts collapse to the *same*
    placeholder, exactly as in the paper's example where
    ``({X}_K, {Y}_K')`` becomes ``(⊥, {Y}_K')``.
    """

    def __str__(self) -> str:
        return "⊥"
