#!/usr/bin/env python3
"""Theorem 1, empirically: sweep every axiom over random systems.

Generates random well-formed systems (random principals, key sets, and
schedules, with environment interference and past-epoch traffic),
instantiates every axiom schema A1-A21 (plus the extra valid schemas
S1/S2) over each system's actual traffic, and model-checks every
instance at every point with the Section 6 semantics.

Also demonstrates the one documented caveat: axiom A11 as stated in the
extended abstract is falsifiable when the ciphertext body nests a
ciphertext the principal cannot read — and sound again under the
transparency side condition (see EXPERIMENTS.md, E3).

Run:  python examples/soundness_sweep.py [num_systems]
"""

import sys

from repro.logic import schema
from repro.model import RunBuilder, system_of
from repro.soundness import generate_systems, sweep_system, sweep_systems
from repro.terms import Vocabulary, encrypted, group


def main() -> None:
    count = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    print(f"sweeping {count} random systems...")
    systems = generate_systems(count, base_seed=2026)
    report = sweep_systems(systems, max_instances_per_schema=80)
    print(report.render())
    print()
    if report.essential_violations:
        print("UNEXPECTED violations:")
        for violation in report.essential_violations:
            print(" ", violation)
    else:
        print("Theorem 1 reproduced: no axiom falsified on these systems.")

    print()
    print("=" * 72)
    print("The A11 nesting caveat, on a purpose-built system")
    print("=" * 72)
    vocab = Vocabulary()
    a, b = vocab.principals("A", "B")
    k1, k2 = vocab.keys("K1", "K2")
    n1, n2, n3 = vocab.nonces("N1", "N2", "N3")

    def build(name, inner):
        builder = RunBuilder([a, b], keysets={a: [k1], b: [k1, k2]})
        builder.send(b, encrypted(group(n1, encrypted(inner, k2, b)), k1, b), a)
        builder.receive(a)
        return builder.build(name)

    system = system_of([build("r1", n2), build("r2", n3)], vocabulary=vocab)
    nested = sweep_system(system, schemas=(schema("A11"),),
                          max_instances_per_schema=100)
    a11 = nested.per_schema["A11"]
    print(f"A11 instances checked: {a11.instances}; "
          f"violations: {len(a11.violations)}")
    for violation in a11.violations[:3]:
        print(" ", violation)
    print(
        "\nEvery violation has an opaque body (A cannot read the inner\n"
        "ciphertext, so two runs differing only inside it are\n"
        "indistinguishable after hiding).  With the transparency side\n"
        "condition, A11 is sound: essential violations ="
        f" {len(a11.essential_violations)}"
    )


if __name__ == "__main__":
    main()
