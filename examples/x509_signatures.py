#!/usr/bin/env python3
"""Public keys and the CCITT X.509 defect (experiment E13).

The full paper treats public keys "as in [BAN89]"; this example runs
the extension end-to-end on BAN89's X.509 finding: signing a message
that *contains* encrypted data attributes the ciphertext to the signer,
but says nothing about the plaintext — an intruder can strip the
signature and re-sign the blob without ever learning the secret.

Run:  python examples/x509_signatures.py
"""

from repro.analysis import analyze
from repro.logic import certify
from repro.protocols import x509
from repro.terms import Believes, Says


def show(repaired: bool) -> None:
    label = "sign-then-encrypt (repaired)" if repaired else \
        "signed ciphertext (the standard's defect)"
    print("=" * 72)
    print(label)
    print("=" * 72)
    ctx = x509.make_context()
    message = ctx.repaired_message if repaired else ctx.flawed_message
    print(f"  A -> B : {message}")
    for logic in ("ban", "at"):
        protocol = (
            x509.ban_protocol(repaired) if logic == "ban"
            else x509.at_protocol(repaired)
        )
        report = analyze(protocol)
        print(f"  [{logic}]")
        for result in report.goal_results:
            print(f"    {result}")
    print()


def main() -> None:
    show(repaired=False)
    show(repaired=True)

    print("=" * 72)
    print("Certifying the repaired attribution as a Hilbert proof")
    print("=" * 72)
    ctx = x509.make_context()
    report = analyze(x509.at_protocol(repaired=True))
    goal = Believes(ctx.b, Says(ctx.a, ctx.yab))
    proof = certify(report.derivation, goal)
    proof.check()
    axioms = sorted(
        {
            step.justification.name
            for step in proof.steps
            if hasattr(step.justification, "name")
        }
    )
    print(f"checked proof: {len(proof.steps)} steps, axioms used: {axioms}")
    print("premises:")
    for premise in proof.premises:
        print(f"  {premise}")


if __name__ == "__main__":
    main()
