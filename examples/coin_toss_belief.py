#!/usr/bin/env python3
"""Section 7's coin toss: when does an optimum notion of belief exist?

Belief in the paper is parameterized by a vector of *good runs* per
principal.  The iterative construction computes one from the initial
assumptions, and:

* **Theorem 2** — under restriction I1 the construction supports the
  assumptions;
* **Theorem 3** — under I1 + I2 it is the *optimum* (maximum)
  supporting vector;
* the **coin-toss counterexample** shows I2 is necessary: with mutually
  mistaken nested beliefs, there is no maximum at all.

Run:  python examples/coin_toss_belief.py
"""

from repro.goodruns import (
    build_cointoss_example,
    build_corrected_cointoss_example,
    construct_good_runs,
    enumerate_supporting_vectors,
    optimality_report,
    supports,
)
from repro.semantics import Evaluator
from repro.terms import Believes


def show(example, title: str) -> None:
    print("=" * 72)
    print(title)
    print("=" * 72)
    print("initial assumptions:")
    for principal, formula in example.assumptions.all_formulas():
        print(f"  {formula}")
    print("I2 satisfied:", example.assumptions.satisfies_i2())

    result = construct_good_runs(example.system, example.assumptions)
    print("\niterative construction:")
    for depth, stage in enumerate(result.stages):
        print(f"  G^{depth} = {stage.describe()}")
    print("supports I:", supports(example.system, result.vector,
                                  example.assumptions))

    report = optimality_report(example.system, example.assumptions)
    print(f"\nsupporting vectors found by exhaustive search: "
          f"{len(report.supporting)}")
    if report.has_optimum:
        print("optimum exists:", report.maximum.describe())
        print("construction is optimum:",
              report.is_optimum(result.vector, example.system))
    else:
        print("NO optimum exists — the supporting vectors have no maximum")

    evaluator = Evaluator(example.system, result.vector)
    heads_run = example.system.run("run-heads")
    belief = Believes(example.p1, example.tails)
    print(
        f"\nrelative to the constructed vector, at time 0 of run-heads:"
        f"\n  {belief} = "
        f"{evaluator.evaluate(belief, heads_run, 0)}"
        f"\n  {example.tails} = "
        f"{evaluator.evaluate(example.tails, heads_run, 0)}"
        "\n  (beliefs may be mistaken: (P believes φ) ⊃ φ is not valid)"
    )
    print()


def main() -> None:
    show(
        build_cointoss_example(),
        "Mutually mistaken beliefs (the paper's counterexample)",
    )
    show(
        build_corrected_cointoss_example(),
        "Corrected beliefs satisfying I2 (Theorem 3 applies)",
    )


def knowing_only_appendix() -> None:
    """Appendix: the Halpern-Moses obstruction behind restriction I1."""
    from repro.goodruns import (
        build_knowing_only_example,
        demonstrate_no_best_state,
    )

    print("=" * 72)
    print("Why I1 bans belief under negation (Halpern-Moses)")
    print("=" * 72)
    example = build_knowing_only_example()
    print(f"requirement: {example.disjunction}")
    maxima = demonstrate_no_best_state()
    print("maximal vectors meeting it:")
    for vector in maxima:
        print(f"  {vector.describe()}")
    print(
        "two incomparable 'states of knowledge', no maximum —\n"
        "so no best notion of belief supports the disjunction."
    )


if __name__ == "__main__":
    main()
    knowing_only_appendix()
