#!/usr/bin/env python3
"""Reproducing BAN89's Needham-Schroeder finding, logically and concretely.

The logical half: B's key belief is underivable because nothing ties
message 3 to the current epoch — unless one adds the "dubious
assumption" that the key is fresh.

The concrete half: we build a *replay attack* in the Section 5 model.
In a past epoch, the environment recorded the ticket ``{Kab, A}_Kbs``
and (by assumption) compromised the old session key.  In the current
epoch it replays the ticket; B accepts a stale key.  Semantically:
``B sees ticket`` holds, but ``fresh(A <-Kab-> B)`` is false and
``S says ...`` fails — exactly the missing premises of the derivation.

Run:  python examples/needham_schroeder_flaw.py
"""

from repro.analysis import analyze
from repro.model import ENVIRONMENT, RunBuilder, system_of
from repro.protocols import needham_schroeder as ns
from repro.semantics import Evaluator
from repro.terms import Fresh, Said, Says, Sees


def logical_half() -> None:
    print("=" * 72)
    print("Logical finding: B's goal fails without the dubious assumption")
    print("=" * 72)
    for dubious in (False, True):
        report = analyze(ns.ban_protocol(with_dubious_assumption=dubious))
        label = "with" if dubious else "without"
        print(f"\n--- {label} 'B believes fresh(A <-Kab-> B)' ---")
        for result in report.goal_results:
            print(f"  {result}")


def replay_attack_run():
    """The environment replays an old ticket in a new epoch."""
    ctx = ns.make_context()
    builder = RunBuilder(
        [ctx.a, ctx.b, ctx.s],
        keysets={ctx.a: [ctx.kas], ctx.b: [ctx.kbs],
                 ctx.s: [ctx.kas, ctx.kbs]},
    )
    # Past epoch: the original protocol ran; the environment wiretapped
    # the ticket (modeled as S also addressing a copy to the network).
    builder.newkey(ctx.s, ctx.kab)
    builder.send(ctx.s, ctx.ticket, ENVIRONMENT)
    builder.receive(ENVIRONMENT)
    builder.mark_epoch()
    # Present epoch: the attacker replays the stale ticket to B.
    builder.send(ENVIRONMENT, ctx.ticket, ctx.b)
    builder.receive(ctx.b)
    builder.newkey(ctx.b, ctx.kab)
    return ctx, builder.build("ns-replay")


def concrete_half() -> None:
    print()
    print("=" * 72)
    print("Concrete replay attack in the model of computation")
    print("=" * 72)
    ctx, run = replay_attack_run()
    system = system_of([run], vocabulary=ctx.vocabulary)
    evaluator = Evaluator(system)
    end = run.end_time
    checks = [
        ("B sees the ticket", Sees(ctx.b, ctx.ticket), True),
        ("S said the key was good (once)", Said(ctx.s, ctx.good), True),
        ("S says it *in this epoch*", Says(ctx.s, ctx.good), False),
        ("the certificate is fresh", Fresh(ctx.good), False),
    ]
    for label, formula, expected in checks:
        value = evaluator.evaluate(formula, run, end)
        marker = "✓" if value == expected else "✗ UNEXPECTED"
        print(f"  {label}: {value}  [{marker}]")
    print()
    print(
        "B has the ticket but no freshness evidence — the exact premises\n"
        "the nonce-verification axiom (A20) needs are the ones that fail."
    )


def main() -> None:
    logical_half()
    concrete_half()


if __name__ == "__main__":
    main()
