#!/usr/bin/env python3
"""Quickstart: define a tiny authentication protocol and analyze it.

We build a one-message key-transport protocol from scratch with the
public API, analyze it in both the original BAN logic (Section 2 of
Abadi & Tuttle 1991) and the reformulated logic (Section 4), and print
the machine-checked derivation of the recipient's key belief.

Run:  python examples/quickstart.py
"""

from repro.analysis import analyze
from repro.protocols.base import Goal, IdealizedProtocol, MessageStep
from repro.terms import (
    Believes,
    Controls,
    Fresh,
    Has,
    SharedKey,
    Vocabulary,
    encrypted,
    group,
)


def build_protocol(logic: str) -> IdealizedProtocol:
    """One step: S -> B : {Ts, (A <-Kab-> B)}_Kbs.

    The server certifies, under the long-term key it shares with B,
    that Kab is a good key for A and B, stamped with a fresh timestamp.
    """
    vocab = Vocabulary()
    a, b, s = vocab.principals("A", "B", "S")
    kab, kbs = vocab.keys("Kab", "Kbs")
    ts = vocab.nonce("Ts")
    good = SharedKey(a, kab, b)
    certificate = encrypted(group(ts, good), kbs, s)

    assumptions = [
        Believes(b, SharedKey(b, kbs, s)),  # B trusts its long-term key
        Believes(b, Controls(s, good)),     # ...and S's word on session keys
        Believes(b, Fresh(ts)),             # ...and the timestamp's freshness
    ]
    if logic == "at":
        # The reformulated logic tracks key possession explicitly.
        assumptions += [Has(b, kbs), Has(s, kbs)]

    return IdealizedProtocol(
        name="quickstart",
        logic=logic,
        description="a one-message key certificate",
        vocabulary=vocab,
        principals=(a, b, s),
        steps=(MessageStep(s, b, certificate),),
        assumptions=tuple(assumptions),
        goals=(Goal("B-key", Believes(b, good)),),
    )


def main() -> None:
    for logic, label in (("ban", "original BAN logic"),
                         ("at", "reformulated Abadi-Tuttle logic")):
        protocol = build_protocol(logic)
        report = analyze(protocol)
        print(f"=== {label} ===")
        for result in report.goal_results:
            print(f"  {result}")
        print("  derivation of B-key:")
        for line in report.explain_goal("B-key").splitlines():
            print("   ", line)
        print()


if __name__ == "__main__":
    main()
