#!/usr/bin/env python3
"""The paper's Figure 1: the Kerberos key-distribution fragment.

This example walks the full pipeline on the paper's own running
example:

1. the BAN-logic annotation (Section 2.3), step by step;
2. the reformulated analysis (Section 4.3) with ``newkey`` steps and
   forwarding syntax, honesty-free;
3. a *concrete execution* in the Section 5 model of computation;
4. a semantic audit: the good-run vector is constructed from the
   initial assumptions (Section 7) and every goal is evaluated with
   the Section 6 possible-worlds semantics.

Run:  python examples/kerberos_figure1.py
"""

from repro.analysis import analyze
from repro.goodruns import construct_good_runs
from repro.protocols import kerberos
from repro.semantics import Evaluator
from repro.soundness import assumptions_vector, audit_protocol


def main() -> None:
    print("=" * 72)
    print("Step 1: BAN-logic annotation of the idealized protocol")
    print("=" * 72)
    ban_report = analyze(kerberos.ban_protocol())
    print(ban_report.pretty())

    print()
    print("=" * 72)
    print("Step 2: reformulated analysis (honesty-free, with forwarding)")
    print("=" * 72)
    at_protocol = kerberos.at_protocol()
    at_report = analyze(at_protocol)
    for result in at_report.goal_results:
        print(f"  {result}")
    print()
    print("B's key belief, as a proof tree over axioms A5/A11/A20/A15:")
    print(at_report.explain_goal("B-key"))

    print()
    print("=" * 72)
    print("Step 3: a concrete execution in the model of computation")
    print("=" * 72)
    run = kerberos.build_run()
    print(f"built {run}; well-formed (WF0-WF5) by construction")
    for k in run.times:
        for principal in run.principals:
            for action in run.performed(principal, k):
                print(f"  t={k}: {principal} performs {action}")

    print()
    print("=" * 72)
    print("Step 4: semantic audit against the possible-worlds semantics")
    print("=" * 72)
    system = kerberos.build_system()
    vector = construct_good_runs(
        system, assumptions_vector(at_protocol).restrict_to(system)
    ).vector
    print(f"constructed good-run vector: {vector.describe()}")
    audit = audit_protocol(at_protocol, system, "kerberos-normal",
                           report=at_report)
    for entry in audit.entries:
        status = "TRUE " if entry.semantically_true else "FALSE"
        derived = "derived   " if entry.derived else "underived "
        print(f"  [{derived}| semantics {status}]  {entry.formula}")
    print()
    print("audit consistent:", audit.consistent)

    ctx = kerberos.make_context()
    evaluator = Evaluator(system, vector)
    lost = system.run("kerberos-lost-msg3")
    belief = ctx.good
    from repro.terms import Believes

    print(
        "in the run where message 3 is lost, B never comes to believe "
        "the key:",
        not evaluator.evaluate(Believes(ctx.b, belief), lost, lost.end_time),
    )


def _certification_appendix() -> None:
    """Appendix: compile the engine derivation into a checked proof."""
    from repro.logic import certify
    from repro.terms import Believes

    print()
    print("=" * 72)
    print("Appendix: certifying B's key belief as a Hilbert proof")
    print("=" * 72)
    at_report = analyze(kerberos.at_protocol())
    ctx = kerberos.make_context()
    proof = certify(at_report.derivation, Believes(ctx.b, ctx.good))
    proof.check()
    print(f"checked proof with {len(proof.steps)} steps; premises:")
    for premise in proof.premises:
        print(f"  {premise}")
    print("last five steps:")
    for index, step in list(enumerate(proof.steps))[-5:]:
        print(f"  {index:>3}. {step.formula}")
        print(f"        [{step.justification}]")


if __name__ == "__main__":
    main()
    _certification_appendix()
