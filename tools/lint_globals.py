#!/usr/bin/env python3
"""AST lint: no new module-level mutable containers in ``src/repro``.

PR 5 moved every piece of per-session engine state — intern table,
semantic-kernel memos, perf counters, span buffer, evaluator registry —
onto :class:`repro.context.EngineContext`; the telemetry PR added the
metrics registry (``repro.obs.metrics``) and the event journal
(``repro.obs.journal``) under the same ownership (lazy ``ctx.metrics``
/ ``ctx.journal`` slots, no module-level instances).  This lint keeps
it that way: a module-level assignment whose value is a mutable
container
(``{}``, ``[]``, ``set()``, ``dict()``, ``defaultdict(...)``,
``weakref.WeakValueDictionary()``, ...) is rejected unless it is on the
explicit allowlist below.

Allowlisted globals fall into two honest categories:

* **import-time registries** — populated once while modules import and
  read-only afterwards (axiom/mutator registries, the perf cache
  registry, the CLI's protocol table);
* **context machinery itself** — the bookkeeping ``repro.context``
  needs to hand out per-session state.

Anything else — in particular a cache or memo keyed on workload data —
belongs on the ``EngineContext``.

Run directly (``python tools/lint_globals.py``) or via the pytest
wrapper (``tests/test_lint_globals.py``); both fail on any violation,
and also on allowlist entries that no longer exist (so the list cannot
rot).
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: ``"module_path:name"`` pairs permitted to be module-level mutable
#: containers.  Keep this list *short* and justified.
ALLOWLIST: frozenset[str] = frozenset(
    {
        # -- context machinery (the owner of all session state) ------------
        "repro/context.py:_NAME_COUNTER",
        # -- import-time registries, read-only after import -----------------
        "repro/perf.py:_cache_clearers",
        "repro/perf.py:_cache_sizers",
        "repro/terms/intern.py:_FIELD_NAMES",  # per-class metadata
        "repro/obs/metrics.py:_HANDLE_TYPES",  # kind -> handle dispatch
        "repro/terms/parser.py:_SORT_NAMES",  # keyword table
        "repro/logic/axioms.py:AXIOMS",
        "repro/logic/certify.py:_PROJECTION_RULES",  # rule-name constants
        "repro/logic/certify.py:_MIXED_PREFIX_RULES",
        "repro/fuzz/mutators.py:MUTATORS",
        "repro/fuzz/proof_mutators.py:PROOF_MUTATORS",
        "repro/__main__.py:_PROTOCOLS",
        "repro/serve/http.py:_REASONS",  # status -> reason phrase constants
        "repro/serve/requests.py:_SYSTEM_KNOBS",  # wire-schema bounds
    }
)

#: Call targets that build mutable containers.
MUTABLE_CALLS = {
    "dict",
    "list",
    "set",
    "bytearray",
    "deque",
    "defaultdict",
    "OrderedDict",
    "Counter",
    "ChainMap",
    "WeakValueDictionary",
    "WeakKeyDictionary",
    "WeakSet",
}

#: Literal node types that denote mutable containers.
MUTABLE_LITERALS = (
    ast.Dict,
    ast.List,
    ast.Set,
    ast.ListComp,
    ast.SetComp,
    ast.DictComp,
)


def _call_name(node: ast.Call) -> str | None:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _is_mutable_value(node: ast.expr) -> bool:
    if isinstance(node, MUTABLE_LITERALS):
        return True
    if isinstance(node, ast.Call):
        name = _call_name(node)
        if name in MUTABLE_CALLS:
            return True
        # ``set(...)``-style conversions of comprehensions count too;
        # anything else (class constructors, factory functions) does
        # not — objects with internal state are the business of their
        # own module's design review, not this lint.
        return False
    return False


def _module_level_targets(module: ast.Module):
    """Yield ``(name, value, lineno)`` for every top-level assignment.

    Dunder names (``__all__`` and friends) are module metadata, not
    engine state, and are skipped.
    """
    for stmt in module.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and not target.id.startswith("__"):
                    yield target.id, stmt.value, stmt.lineno
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            if isinstance(stmt.target, ast.Name) and not stmt.target.id.startswith("__"):
                yield stmt.target.id, stmt.value, stmt.lineno


def check(src_root: Path | None = None) -> tuple[list[str], set[str]]:
    """Scan ``src/repro`` and return (violations, used allowlist keys)."""
    if src_root is None:
        src_root = Path(__file__).resolve().parent.parent / "src"
    root = src_root
    used: set[str] = set()
    violations: list[str] = []
    for path in sorted((root / "repro").rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        for name, value, lineno in _module_level_targets(tree):
            if not _is_mutable_value(value):
                continue
            key = f"{rel}:{name}"
            if key in ALLOWLIST:
                used.add(key)
                continue
            violations.append(
                f"{rel}:{lineno}: module-level mutable container {name!r} — "
                "per-session state belongs on repro.context.EngineContext "
                "(or add to tools/lint_globals.py ALLOWLIST with a reason)"
            )
    return violations, used


def main() -> int:
    violations, used = check()
    stale = sorted(ALLOWLIST - used)
    for message in violations:
        print(message, file=sys.stderr)
    for key in stale:
        print(
            f"stale allowlist entry {key!r}: no such module-level mutable "
            "container (remove it from tools/lint_globals.py)",
            file=sys.stderr,
        )
    if violations or stale:
        return 1
    print(
        f"lint_globals: clean ({len(used)} allowlisted registries, "
        "no stray module-level mutable state)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
