#!/usr/bin/env python3
"""Load-generate the analysis daemon and record serving latencies.

Boots an in-process :class:`repro.serve.AnalysisDaemon`, drives it with
``--clients`` concurrent threads each issuing ``--requests`` analysis
requests over one keep-alive :class:`repro.serve.ServeClient` apiece
(same generated system, so the daemon's batching has something to
batch), and writes ``BENCH_serve.json``: nearest-rank p50/p95/p99
latency, sustained requests/s, error count, the compiled-cache hit
rate the batch sharing achieved, and how many requests rode reused
connections.  Wired into ``tools/bench_gate.py``
(CI gates the latency percentiles against comparable history)::

    PYTHONPATH=src python tools/bench_serve.py --clients 4 --requests 25
    python tools/bench_gate.py --bench BENCH_serve.json \
        --history BENCH_serve_history.jsonl --keys latency_p95_ms

Exit status 1 if any request errored — a load run that dropped work is
not a benchmark.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import context, perf  # noqa: E402
from repro.obs.runmeta import run_metadata  # noqa: E402
from repro.serve import AnalysisDaemon, ServeConfig, client  # noqa: E402


def percentile(sorted_values: list[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending list."""
    if not sorted_values:
        return 0.0
    rank = max(1, round(fraction * len(sorted_values)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


def _client_loop(host, port, payload, count, latencies, errors, barrier,
                 reuse):
    conn = client.ServeClient(host, port, timeout=120.0)
    barrier.wait()
    with conn:
        for _ in range(count):
            started = time.perf_counter()
            try:
                status, _body = conn.post_json("/analyze", payload)
            except Exception as exc:  # noqa: BLE001 - any failure is an error
                errors.append(repr(exc))
                continue
            elapsed = time.perf_counter() - started
            if status == 200:
                latencies.append(elapsed)
            else:
                errors.append(f"status {status}")
        reuse.append((conn.connections_opened, conn.requests_sent,
                      conn.connections_reused))


def run_load(args) -> dict:
    config = ServeConfig(
        workers=args.workers,
        queue_size=max(64, args.clients * 4),
        max_batch=args.max_batch,
    )
    daemon = AnalysisDaemon(config)
    started = threading.Event()
    bound: dict[str, object] = {}
    loop = asyncio.new_event_loop()

    def serve_thread():
        asyncio.set_event_loop(loop)

        async def boot():
            bound["host"], bound["port"] = await daemon.start()
            started.set()
            await daemon.serve_until_shutdown()

        loop.run_until_complete(boot())
        loop.close()

    thread = threading.Thread(target=serve_thread, name="bench-serve-daemon")
    thread.start()
    if not started.wait(timeout=30):
        raise RuntimeError("daemon failed to start within 30s")
    host, port = bound["host"], bound["port"]

    payload = {
        "kind": "system",
        "seed": args.seed,
        "runs": 2,
        "steps": 10,
        "formula": "P1 believes p0",
        "backend": args.backend,
    }
    latencies: list[float] = []
    errors: list[str] = []
    reuse: list[tuple[int, int, int]] = []
    barrier = threading.Barrier(args.clients + 1)
    clients = [
        threading.Thread(
            target=_client_loop,
            args=(host, port, payload, args.requests, latencies, errors,
                  barrier, reuse),
            name=f"bench-client-{index}",
        )
        for index in range(args.clients)
    ]
    for worker in clients:
        worker.start()
    barrier.wait()
    wall_started = time.perf_counter()
    for worker in clients:
        worker.join()
    wall_s = time.perf_counter() - wall_started

    asyncio.run_coroutine_threadsafe(
        daemon.shutdown(drain=True), loop).result(timeout=60)
    thread.join(timeout=60)

    counters = dict(daemon.root.counters)
    hits = counters.get("compiled_eval.hit", 0)
    misses = counters.get("compiled_eval.miss", 0)
    ordered = sorted(latencies)
    completed = len(latencies)
    measurements = {
        "latency_p50_ms": round(percentile(ordered, 0.50) * 1000, 3),
        "latency_p95_ms": round(percentile(ordered, 0.95) * 1000, 3),
        "latency_p99_ms": round(percentile(ordered, 0.99) * 1000, 3),
        "requests_per_s": round(completed / wall_s, 3) if wall_s else 0.0,
        "wall_s": round(wall_s, 6),
        "total_requests": args.clients * args.requests,
        "completed": completed,
        "errors": len(errors),
        "compiled_hit_rate": round(hits / (hits + misses), 6)
        if hits + misses else 0.0,
        "batches": counters.get("serve.batches", 0),
        "batched_requests": counters.get("serve.batched_requests", 0),
        "connections_opened": sum(opened for opened, _sent, _r in reuse),
        "connections_reused": sum(r for _opened, _sent, r in reuse),
    }
    return {
        "daemon": daemon,
        "measurements": measurements,
        "errors": errors,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=4,
                        help="concurrent client threads (default 4)")
    parser.add_argument("--requests", type=int, default=25,
                        help="requests per client (default 25)")
    parser.add_argument("--workers", type=int, default=2,
                        help="daemon analysis workers (default 2)")
    parser.add_argument("--max-batch", type=int, default=8,
                        help="daemon batching width (default 8)")
    parser.add_argument("--seed", type=int, default=9,
                        help="generated-system seed all clients share")
    parser.add_argument("--backend", default="belief",
                        help="semantics backend every request names "
                             "(default belief)")
    parser.add_argument("--output", default="BENCH_serve.json",
                        help="where to write the benchmark record")
    args = parser.parse_args(argv)

    result = run_load(args)
    measurements = result["measurements"]
    daemon = result["daemon"]

    # The record's perf section is the daemon root's counter table —
    # that is where every batch context's telemetry was absorbed.
    with context.use(daemon.root):
        perf.write_bench_json(
            args.output,
            measurements,
            parameters={
                "systems": args.clients,
                "instances": args.requests,
                "seed": args.seed,
                "workers": args.workers,
                "engine": "serve",
                "backend": args.backend,
            },
            meta=run_metadata(
                command="bench_serve",
                clients=args.clients,
                requests_per_client=args.requests,
                workers=args.workers,
                backend=args.backend,
            ),
        )

    print(f"bench_serve: {measurements['completed']}/"
          f"{measurements['total_requests']} ok in "
          f"{measurements['wall_s']}s "
          f"({measurements['requests_per_s']} req/s), "
          f"p50 {measurements['latency_p50_ms']}ms "
          f"p95 {measurements['latency_p95_ms']}ms "
          f"p99 {measurements['latency_p99_ms']}ms, "
          f"compiled hit rate {measurements['compiled_hit_rate']}, "
          f"{measurements['connections_reused']} requests on reused "
          f"connections ({measurements['connections_opened']} opened)")
    if result["errors"]:
        for error in result["errors"][:10]:
            print(f"bench_serve: error: {error}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
