#!/usr/bin/env python3
"""Bench-regression gate: append a perf record to history, fail on slowdowns.

Reads the ``BENCH_sweep.json`` written by ``python -m repro perf``,
appends one compact entry to ``BENCH_history.jsonl`` (keyed by git SHA
and timestamp), then compares the current record's headline timings
against the best *comparable* prior entry.  Exit status 1 on any
regression beyond the noise threshold; 0 otherwise.

Comparability is strict on purpose: an entry is a baseline candidate
only if its sweep *parameters* (systems/instances/seed/workers/engine)
and its *environment* label match the current record's.  CI runners set
``--environment github-actions``; local runs default to ``local``.
Without this split the committed history of a fast dev machine would
permanently fail the gate on slower shared runners (and vice versa).

The baseline is the **minimum** over comparable prior entries within
``--window`` (best-known performance, so slow-then-slow does not ratchet
the bar downward), and the gate passes vacuously when no comparable
history exists — a fresh runner's first record seeds its own baseline.

Usage::

    python tools/bench_gate.py                       # gate BENCH_sweep.json
    python tools/bench_gate.py --threshold 0.30      # looser noise bound
    python tools/bench_gate.py --no-append --bench X # dry-run a record
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Headline measurements gated by default.  ``sweep_cold_compiled_s``
#: is the adopted-engine cold E3 sweep (the tentpole measurement);
#: ``sweep_cold_s`` is its legacy alias kept for old-history
#: comparability.
DEFAULT_KEYS = ("sweep_cold_compiled_s", "sweep_cold_s")

#: Parameters that must match for two entries to be comparable.
PARAMETER_KEYS = ("systems", "instances", "seed", "workers", "engine")


def load_bench(path: Path) -> dict:
    with path.open(encoding="utf-8") as handle:
        return json.load(handle)


def history_entry(bench: dict, environment: str) -> dict:
    """One compact history line from a full BENCH record."""
    meta = bench.get("meta", {})
    parameters = bench.get("parameters", {})
    measurements = bench.get("measurements", {})
    return {
        "git_sha": meta.get("git_sha"),
        "timestamp": meta.get("timestamp"),
        "environment": environment,
        "parameters": {
            key: parameters.get(key) for key in PARAMETER_KEYS
        },
        "measurements": {
            key: value
            for key, value in sorted(measurements.items())
            if isinstance(value, (int, float))
        },
    }


def read_history(path: Path) -> list[dict]:
    if not path.exists():
        return []
    entries = []
    with path.open(encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                entries.append(json.loads(line))
    return entries


def append_history(path: Path, entry: dict) -> None:
    with path.open("a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")


def comparable(entry: dict, current: dict) -> bool:
    """Same parameters, same environment — a legitimate baseline."""
    return (
        entry.get("environment") == current.get("environment")
        and entry.get("parameters") == current.get("parameters")
    )


def check_regressions(
    current: dict,
    history: list[dict],
    keys: tuple[str, ...],
    threshold: float,
    window: int,
) -> tuple[list[str], list[str]]:
    """(regressions, notes) for the current entry against history.

    The baseline per key is the minimum over the last ``window``
    comparable entries; a key regresses when the current value exceeds
    ``baseline * (1 + threshold)``.
    """
    candidates = [e for e in history if comparable(e, current)]
    if window > 0:
        candidates = candidates[-window:]
    regressions: list[str] = []
    notes: list[str] = []
    if not candidates:
        notes.append(
            "no comparable history (environment/parameters unseen); "
            "current record seeds the baseline"
        )
        return regressions, notes
    notes.append(f"baseline from {len(candidates)} comparable entr"
                 f"{'y' if len(candidates) == 1 else 'ies'}")
    for key in keys:
        value = current["measurements"].get(key)
        if value is None:
            notes.append(f"{key}: absent from current record, skipped")
            continue
        prior = [
            e["measurements"][key]
            for e in candidates
            if key in e.get("measurements", {})
        ]
        if not prior:
            notes.append(f"{key}: no prior samples, skipped")
            continue
        baseline = min(prior)
        limit = baseline * (1.0 + threshold)
        ratio = value / baseline if baseline > 0 else float("inf")
        line = (f"{key}: {value:.6f}s vs baseline {baseline:.6f}s "
                f"({ratio:.2f}x, limit {limit:.6f}s)")
        if value > limit:
            regressions.append(line)
        else:
            notes.append(line + " — ok")
    return regressions, notes


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--bench", default="BENCH_sweep.json",
        help="benchmark record to gate (from `python -m repro perf`)",
    )
    parser.add_argument(
        "--history", default="BENCH_history.jsonl",
        help="append-only history file keyed by git SHA",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.20,
        help="fractional slowdown tolerated over the baseline "
             "(default 0.20 = 20%%)",
    )
    parser.add_argument(
        "--window", type=int, default=50,
        help="how many recent comparable entries form the baseline "
             "(0 = all)",
    )
    parser.add_argument(
        "--keys", default=",".join(DEFAULT_KEYS),
        help="comma-separated measurement keys to gate",
    )
    parser.add_argument(
        "--environment", default="local",
        help="environment label for comparability (CI sets its own)",
    )
    parser.add_argument(
        "--no-append", action="store_true",
        help="gate without recording the current entry in history",
    )
    args = parser.parse_args(argv)

    bench_path = Path(args.bench)
    if not bench_path.exists():
        print(f"bench-gate: no benchmark record at {bench_path}",
              file=sys.stderr)
        return 2
    keys = tuple(k.strip() for k in args.keys.split(",") if k.strip())
    current = history_entry(load_bench(bench_path), args.environment)
    history = read_history(Path(args.history))
    regressions, notes = check_regressions(
        current, history, keys, args.threshold, args.window
    )
    if not args.no_append:
        append_history(Path(args.history), current)

    sha = (current.get("git_sha") or "unknown")[:12]
    print(f"bench-gate: {sha} [{args.environment}] "
          f"threshold {args.threshold:.0%}")
    for note in notes:
        print(f"  {note}")
    if regressions:
        print("bench-gate: REGRESSION", file=sys.stderr)
        for line in regressions:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("bench-gate: ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
